"""Unit tests for blocks, functions, programs and CFG derivation."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Reg
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram, validate_program
from repro.asm.registers import get_register
from repro.errors import AsmError


def _reg(name):
    return Reg(get_register(name))


def _func_with_diamond() -> AsmFunction:
    """entry -> (then | else) -> join -> ret."""
    entry = AsmBlock("f", [
        ins("cmpl", Imm(0), _reg("eax")),
        ins("je", LabelRef(".Lelse")),
    ])
    then = AsmBlock(".Lthen", [ins("jmp", LabelRef(".Ljoin"))])
    els = AsmBlock(".Lelse", [ins("nop")])
    join = AsmBlock(".Ljoin", [ins("retq")])
    return AsmFunction("f", [entry, then, els, join])


class TestBlock:
    def test_terminator_detection(self):
        block = AsmBlock("b", [ins("nop"), ins("retq")])
        assert block.terminator is not None
        assert block.terminator.mnemonic == "retq"

    def test_no_terminator(self):
        assert AsmBlock("b", [ins("nop")]).terminator is None

    def test_call_is_not_terminator(self):
        block = AsmBlock("b", [ins("call", LabelRef("f"))])
        assert block.terminator is None

    def test_body_and_terminator_split(self):
        block = AsmBlock("b", [ins("nop"), ins("retq")])
        body, term = block.body_and_terminator()
        assert len(body) == 1 and term.mnemonic == "retq"


class TestCfg:
    def test_jcc_successors(self):
        func = _func_with_diamond()
        assert func.successors(func.block("f")) == [".Lelse", ".Lthen"]

    def test_jmp_successor(self):
        func = _func_with_diamond()
        assert func.successors(func.block(".Lthen")) == [".Ljoin"]

    def test_fallthrough_successor(self):
        func = _func_with_diamond()
        assert func.successors(func.block(".Lelse")) == [".Ljoin"]

    def test_ret_has_no_successors(self):
        func = _func_with_diamond()
        assert func.successors(func.block(".Ljoin")) == []

    def test_predecessors(self):
        func = _func_with_diamond()
        preds = func.predecessors()
        assert sorted(preds[".Ljoin"]) == [".Lelse", ".Lthen"]
        assert preds["f"] == []

    def test_branch_targets(self):
        func = _func_with_diamond()
        assert func.branch_targets() == {".Lelse", ".Ljoin"}


class TestFunction:
    def test_duplicate_block_rejected(self):
        func = AsmFunction("f")
        with pytest.raises(AsmError):
            func.add_block("f")

    def test_missing_block_lookup(self):
        with pytest.raises(AsmError):
            AsmFunction("f").block("nope")

    def test_static_size(self):
        assert _func_with_diamond().static_size() == 5


class TestProgram:
    def test_duplicate_function_rejected(self):
        program = AsmProgram([AsmFunction("f")])
        with pytest.raises(AsmError):
            program.add_function(AsmFunction("f"))

    def test_copy_is_deep(self):
        program = AsmProgram([_func_with_diamond()])
        clone = program.copy()
        clone.function("f").entry.instructions.clear()
        assert program.function("f").entry.instructions

    def test_copy_preserves_metadata(self):
        program = AsmProgram([_func_with_diamond()], metadata={"k": "v"})
        assert program.copy().metadata == {"k": "v"}


class TestValidation:
    def test_valid_program_passes(self):
        func = AsmFunction("main", [AsmBlock("main", [ins("retq")])])
        validate_program(AsmProgram([func]))

    def test_unknown_jump_target(self):
        func = AsmFunction("main", [
            AsmBlock("main", [ins("jmp", LabelRef("nowhere"))]),
        ])
        with pytest.raises(AsmError):
            validate_program(AsmProgram([func]))

    def test_unknown_call_target(self):
        func = AsmFunction("main", [
            AsmBlock("main", [ins("call", LabelRef("nope")), ins("retq")]),
        ])
        with pytest.raises(AsmError):
            validate_program(AsmProgram([func]))

    def test_builtin_call_allowed(self):
        func = AsmFunction("main", [
            AsmBlock("main", [ins("call", LabelRef("print_int")), ins("retq")]),
        ])
        validate_program(AsmProgram([func]))
