"""Unit tests for register-usage scanning and requisition candidates."""

from repro.asm.analysis import (
    requisition_candidates,
    roots_touched_in_block,
    scan_register_usage,
)
from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.program import AsmBlock, AsmFunction
from repro.asm.registers import get_register


def _reg(name):
    return Reg(get_register(name))


def _simple_func() -> AsmFunction:
    block = AsmBlock("f", [
        ins("movl", Imm(1), _reg("eax")),
        ins("addl", _reg("ecx"), _reg("eax")),
        ins("movq", _reg("rax"), Mem(disp=-8, base=get_register("rbp"))),
        ins("retq"),
    ])
    return AsmFunction("f", [block])


class TestScan:
    def test_used_roots_detected(self):
        usage = scan_register_usage(_simple_func())
        assert {"rax", "rcx", "rbp"} <= usage.gprs
        assert "r10" not in usage.gprs

    def test_sub_register_maps_to_root(self):
        usage = scan_register_usage(_simple_func())
        assert "rax" in usage.gprs  # via eax

    def test_spare_gprs_exclude_used_and_reserved(self):
        usage = scan_register_usage(_simple_func())
        spares = usage.spare_gprs
        assert "rax" not in spares
        assert "rsp" not in spares and "rbp" not in spares
        assert "r10" in spares

    def test_spare_preference_order(self):
        usage = scan_register_usage(_simple_func())
        assert usage.spare_gprs[0] == "r10"

    def test_vectors_all_spare_in_scalar_code(self):
        usage = scan_register_usage(_simple_func())
        assert len(usage.spare_vectors) == 16

    def test_vector_usage_detected(self):
        block = AsmBlock("f", [
            ins("movq", _reg("rax"), _reg("xmm5")),
            ins("retq"),
        ])
        usage = scan_register_usage(AsmFunction("f", [block]))
        assert "ymm5" in usage.vectors
        assert "ymm5" not in usage.spare_vectors

    def test_calls_do_not_mark_arg_registers_used(self):
        block = AsmBlock("f", [ins("call", LabelRef("g")), ins("retq")])
        usage = scan_register_usage(AsmFunction("f", [block]))
        assert "rdi" not in usage.gprs


class TestRequisition:
    def test_block_touched_roots(self):
        block = AsmBlock("b", [ins("movl", Imm(1), _reg("r10d"))])
        assert roots_touched_in_block(block) == {"r10"}

    def test_candidates_exclude_touched(self):
        block = AsmBlock("b", [ins("movl", Imm(1), _reg("r10d"))])
        candidates = requisition_candidates(block)
        assert "r10" not in candidates
        assert "r11" in candidates

    def test_candidates_exclude_reserved(self):
        block = AsmBlock("b", [ins("nop")])
        candidates = requisition_candidates(block)
        assert "rsp" not in candidates and "rbp" not in candidates

    def test_call_blocks_everything(self):
        block = AsmBlock("b", [ins("call", LabelRef("g"))])
        assert requisition_candidates(block) == ()
