"""Unit tests for the instruction model and its metadata table."""

import pytest

from repro.asm.instructions import (
    CONDITION_CODES,
    INVERTED_CC,
    Instruction,
    InstrKind,
    get_spec,
    ins,
    known_mnemonics,
)
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.registers import get_register
from repro.errors import AsmError


def _reg(name):
    return Reg(get_register(name))


class TestSpecTable:
    def test_widths_from_suffix(self):
        assert get_spec("movq").width == 64
        assert get_spec("movl").width == 32
        assert get_spec("movb").width == 8

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            get_spec("frobnicate")

    def test_cmp_has_no_dest(self):
        assert not get_spec("cmpl").has_dest
        assert get_spec("cmpl").writes_flags

    def test_jcc_reads_flags(self):
        for cc in CONDITION_CODES:
            spec = get_spec(f"j{cc}")
            assert spec.reads_flags and spec.cc == cc

    def test_setcc_writes_byte(self):
        assert get_spec("sete").width == 8
        assert get_spec("sete").has_dest

    def test_movext_source_widths(self):
        assert get_spec("movslq").src_width == 32
        assert get_spec("movzbl").src_width == 8

    def test_inverted_cc_is_involution(self):
        for cc, inv in INVERTED_CC.items():
            assert INVERTED_CC[inv] == cc

    def test_known_mnemonics_nonempty(self):
        assert "vinserti128" in known_mnemonics()


class TestConstruction:
    def test_operand_count_enforced(self):
        with pytest.raises(AsmError):
            Instruction("movq", (_reg("rax"),))

    def test_uids_unique(self):
        a = ins("nop")
        b = ins("nop")
        assert a.uid != b.uid

    def test_copy_gets_new_uid(self):
        a = ins("movq", _reg("rax"), _reg("rbx"))
        b = a.copy()
        assert a.uid != b.uid
        assert b.operands == a.operands

    def test_copy_overrides(self):
        a = ins("movq", _reg("rax"), _reg("rbx"))
        b = a.copy(origin="dup")
        assert b.origin == "dup"
        assert a.origin == "orig"


class TestAccessors:
    def test_dest_is_last_operand(self):
        instr = ins("addl", Imm(1), _reg("eax"))
        assert instr.dest == _reg("eax")
        assert instr.sources == (Imm(1),)

    def test_cmp_has_no_dest_operand(self):
        instr = ins("cmpl", Imm(0), _reg("eax"))
        assert instr.dest is None

    def test_target_label(self):
        assert ins("jmp", LabelRef("foo")).target_label == "foo"
        assert ins("call", LabelRef("f")).target_label == "f"
        assert ins("retq").target_label is None


class TestDestRegisters:
    def test_mov_dest(self):
        instr = ins("movq", _reg("rax"), _reg("rbx"))
        assert [r.name for r in instr.dest_registers()] == ["rbx"]

    def test_store_has_no_dest_register(self):
        instr = ins("movl", _reg("eax"), Mem(disp=-8, base=get_register("rbp")))
        assert instr.dest_registers() == ()

    def test_cmp_dest_is_flags(self):
        instr = ins("cmpl", Imm(0), _reg("eax"))
        assert [r.name for r in instr.dest_registers()] == ["rflags"]

    def test_idiv_implicit_dests(self):
        instr = ins("idivl", _reg("ecx"))
        assert {r.name for r in instr.dest_registers()} == {"eax", "edx"}
        instr64 = ins("idivq", _reg("rcx"))
        assert {r.name for r in instr64.dest_registers()} == {"rax", "rdx"}

    def test_convert_dests(self):
        assert [r.name for r in ins("cltq").dest_registers()] == ["rax"]
        assert [r.name for r in ins("cltd").dest_registers()] == ["edx"]
        assert [r.name for r in ins("cqto").dest_registers()] == ["rdx"]

    def test_push_not_a_fault_site(self):
        assert not ins("pushq", _reg("rax")).is_fault_site()

    def test_pop_is_a_fault_site(self):
        assert ins("popq", _reg("rax")).is_fault_site()

    def test_jmp_not_a_fault_site(self):
        assert not ins("jmp", LabelRef("x")).is_fault_site()

    def test_vptest_dest_is_flags(self):
        instr = ins("vptest", _reg("ymm0"), _reg("ymm0"))
        assert [r.name for r in instr.dest_registers()] == ["rflags"]


class TestReadRegisters:
    def test_mov_reads_source_only(self):
        instr = ins("movq", _reg("rax"), _reg("rbx"))
        assert {r.root for r in instr.read_registers()} == {"rax"}

    def test_rmw_alu_reads_dest(self):
        instr = ins("addl", _reg("ecx"), _reg("eax"))
        assert {r.root for r in instr.read_registers()} == {"rcx", "rax"}

    def test_mem_operand_reads_address_registers(self):
        mem = Mem(base=get_register("rax"), index=get_register("rcx"), scale=4)
        instr = ins("movl", mem, _reg("edx"))
        assert {r.root for r in instr.read_registers()} == {"rax", "rcx"}

    def test_pinsrq_reads_its_destination(self):
        instr = ins("pinsrq", Imm(1), _reg("rax"), _reg("xmm0"))
        roots = {r.root for r in instr.read_registers()}
        assert "ymm0" in roots and "rax" in roots

    def test_idiv_reads_implicit_pair(self):
        roots = {r.root for r in ins("idivl", _reg("ecx")).read_registers()}
        assert {"rax", "rdx", "rcx"} <= roots


class TestMemoryEffects:
    def test_load_reads_memory(self):
        instr = ins("movq", Mem(disp=-8, base=get_register("rbp")), _reg("rax"))
        assert instr.reads_memory() and not instr.writes_memory()

    def test_store_writes_memory(self):
        instr = ins("movq", _reg("rax"), Mem(disp=-8, base=get_register("rbp")))
        assert instr.writes_memory() and not instr.reads_memory()

    def test_push_pop(self):
        assert ins("pushq", _reg("rax")).writes_memory()
        assert ins("popq", _reg("rax")).reads_memory()

    def test_lea_touches_no_memory(self):
        instr = ins("leaq", Mem(disp=-8, base=get_register("rbp")), _reg("rax"))
        assert not instr.reads_memory() and not instr.writes_memory()


class TestKinds:
    def test_terminators(self):
        assert ins("jmp", LabelRef("a")).kind.is_terminator
        assert ins("je", LabelRef("a")).kind.is_terminator
        assert ins("retq").kind.is_terminator
        assert not ins("call", LabelRef("f")).kind.is_terminator

    def test_vector_kinds(self):
        assert ins("vpxor", _reg("ymm0"), _reg("ymm1"), _reg("ymm2")).kind.is_vector
        assert ins("vinserti128", Imm(1), _reg("xmm0"), _reg("ymm1"),
                   _reg("ymm1")).kind.is_vector
