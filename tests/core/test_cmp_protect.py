"""Deferred-detection tests (Fig. 5)."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Reg
from repro.asm.registers import get_register
from repro.core.cmp_protect import CompareProtector
from repro.core.spare_regs import RegisterPlan
from repro.errors import TransformError

DETECT = ".Ldetect"


def _reg(name):
    return Reg(get_register(name))


def _plan(in_registers=True) -> RegisterPlan:
    if in_registers:
        return RegisterPlan(general="r10", simd_scratch="r13", cmp_a="r11",
                            cmp_b="r12", xmm=(0, 1, 2, 3))
    return RegisterPlan(general="r10", simd_scratch="r13", cmp_a=None,
                        cmp_b=None, xmm=(0, 1, 2, 3),
                        cmp_slot_a=-104, cmp_slot_b=-112)


class TestBranchCompare:
    def test_fig5_sequence(self):
        protector = CompareProtector(_plan(), DETECT)
        cmp_instr = ins("cmpl", Imm(0), _reg("eax"))
        jcc = ins("jl", LabelRef(".LBB7_4"))
        out = protector.protect_branch_compare(cmp_instr, jcc,
                                               (".LBB7_4", ".Lnext"))
        assert [i.mnemonic for i in out] == ["cmpl", "setl", "cmpl", "setl"]
        assert out[1].operands == (Reg(get_register("r11b")),)
        assert out[3].operands == (Reg(get_register("r12b")),)

    def test_capture_matches_consumer_condition(self):
        protector = CompareProtector(_plan(), DETECT)
        out = protector.protect_branch_compare(
            ins("cmpl", Imm(0), _reg("eax")), ins("jge", LabelRef(".L")),
            (".L",),
        )
        assert out[1].mnemonic == "setge"

    def test_successors_recorded_for_entry_checks(self):
        protector = CompareProtector(_plan(), DETECT)
        protector.protect_branch_compare(
            ins("cmpl", Imm(0), _reg("eax")), ins("je", LabelRef(".Lt")),
            (".Lt", ".Lf"),
        )
        assert protector.pending_entry_checks == {".Lt", ".Lf"}

    def test_unconditional_consumer_rejected(self):
        protector = CompareProtector(_plan(), DETECT)
        with pytest.raises(TransformError):
            protector.protect_branch_compare(
                ins("cmpl", Imm(0), _reg("eax")), ins("jmp", LabelRef(".L")),
                (".L",),
            )

    def test_scarce_mode_spills_to_frame_slots(self):
        protector = CompareProtector(_plan(in_registers=False), DETECT)
        out = protector.protect_branch_compare(
            ins("cmpl", Imm(0), _reg("eax")), ins("jl", LabelRef(".L")),
            (".L",), requisition="r9",
        )
        mnemonics = [i.mnemonic for i in out]
        assert mnemonics == ["cmpl", "pushq", "setl", "movb", "cmpl",
                             "setl", "movb", "popq"]
        spills = [i for i in out if i.mnemonic == "movb"]
        assert spills[0].operands[1].disp == -104
        assert spills[1].operands[1].disp == -112

    def test_scarce_mode_requires_requisition(self):
        protector = CompareProtector(_plan(in_registers=False), DETECT)
        with pytest.raises(TransformError):
            protector.protect_branch_compare(
                ins("cmpl", Imm(0), _reg("eax")), ins("jl", LabelRef(".L")),
                (".L",),
            )


class TestSetccPair:
    def test_pair_duplicated_and_checked(self):
        protector = CompareProtector(_plan(), DETECT)
        cmp_instr = ins("cmpl", Imm(5), _reg("eax"))
        setcc = ins("setl", _reg("al"))
        out = protector.protect_setcc_pair(cmp_instr, setcc, "r10")
        assert [i.mnemonic for i in out] == [
            "cmpl", "setl", "cmpl", "setl", "cmpb", "jne",
        ]
        # Scratch capture first, original setcc after the duplicate compare:
        # the original destination (%al) overlaps %eax, so running it before
        # the duplicate ``cmpl $5, %eax`` would clobber the re-read operand.
        assert out[1].operands == (Reg(get_register("r10b")),)
        assert out[3] is setcc
        assert out[-1].target_label == DETECT

    def test_overlapping_dest_does_not_false_detect(self):
        """Regression (found by the fuzzer): ``set<cc>`` into a byte of a
        compared register must not poison the duplicate comparison."""
        from repro.machine.cpu import Machine
        from repro.pipeline import build_variants

        source = """
int main() {
    int flag = 0;
    if (flag || 60 <= 0) { flag = 1; }
    print_int(flag);
    return 0;
}
"""
        build = build_variants(source, names=("raw", "ferrum"))
        raw = Machine(build["raw"].asm).run()
        protected = Machine(build["ferrum"].asm).run()  # must not detect
        assert protected.output == raw.output


class TestEntryCheck:
    def test_register_mode(self):
        protector = CompareProtector(_plan(), DETECT)
        out = protector.entry_check()
        assert [i.mnemonic for i in out] == ["cmpb", "jne"]
        assert out[0].operands == (Reg(get_register("r11b")),
                                   Reg(get_register("r12b")))

    def test_scarce_mode(self):
        protector = CompareProtector(_plan(in_registers=False), DETECT)
        out = protector.entry_check(requisition="r9")
        assert [i.mnemonic for i in out] == ["pushq", "movb", "cmpb", "jne",
                                             "popq"]

    def test_scarce_mode_requires_requisition(self):
        protector = CompareProtector(_plan(in_registers=False), DETECT)
        with pytest.raises(TransformError):
            protector.entry_check()
