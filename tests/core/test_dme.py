"""DME build layer: decorrelation maps, the structural gate, trace equality.

The detector's zero-false-positive claim rests on three properties proven
here:

* every decorrelation map is a bijection (register roles and per-function
  slot cells), so canonicalization can erase the decorrelation exactly;
* the secondary is a *pure renaming* of the primary — same shape, operands
  equal modulo the maps — and any sabotage of that property is rejected at
  build time by :func:`verify_decorrelation`;
* on fault-free runs the variant pair's canonical traces are equal
  position for position (the lockstep gate), across the curated workloads
  *and* Hypothesis-drawn programs from the fuzz generator grammar.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm.operands import Imm
from repro.core.dme import (
    DME_DEFAULT_SEED,
    DmeProgram,
    build_dme_program,
    static_ordinals,
    verify_decorrelation,
)
from repro.errors import TransformError
from repro.faultinjection.dme import DmeMachine, lockstep_reference
from repro.fuzz.generator import generate_program
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir
from repro.workloads import get_workload

pytestmark = pytest.mark.dme

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def kmeans_dme():
    return build_dme_program(compile_to_ir(get_workload("kmeans").source(1)))


class TestDecorrelationMaps:
    def test_register_map_is_a_bijection_off_the_defaults(self, kmeans_dme):
        register_map = kmeans_dme.maps.register_map
        assert set(register_map) == {"rax", "rcx"}
        assert len(set(register_map.values())) == len(register_map)
        # Every role genuinely moves: acc off rax, aux off rcx.
        assert register_map["rax"] != "rax"
        assert register_map["rcx"] != "rcx"
        assert register_map["rax"] != register_map["rcx"]

    def test_slot_maps_are_bijections_over_their_cells(self, kmeans_dme):
        for name, slot_map in kmeans_dme.maps.slot_maps.items():
            assert set(slot_map) == set(slot_map.values()), name

    @pytest.mark.parametrize("seed", (0, 1, 7, DME_DEFAULT_SEED, 2**31))
    def test_every_seed_yields_a_valid_pair(self, seed):
        module = compile_to_ir(get_workload("bfs").source(1))
        program = build_dme_program(module, seed=seed)
        assert isinstance(program, DmeProgram)
        assert program.maps.seed == seed
        # The build gate already ran; run it again explicitly for clarity.
        verify_decorrelation(program, program.secondary, program.maps)

    def test_static_ordinals_are_a_bijection(self, kmeans_dme):
        ordinals = static_ordinals(kmeans_dme)
        count = sum(1 for _ in kmeans_dme.instructions())
        assert sorted(ordinals.values()) == list(range(count))
        secondary = static_ordinals(kmeans_dme.secondary)
        assert sorted(secondary.values()) == list(range(count))


class TestStructuralGate:
    def test_pair_is_a_pure_renaming(self, kmeans_dme):
        primary = list(kmeans_dme.instructions())
        secondary = list(kmeans_dme.secondary.instructions())
        assert len(primary) == len(secondary)
        for prim, sec in zip(primary, secondary):
            assert prim.mnemonic == sec.mnemonic
            assert prim.origin == sec.origin

    def test_sabotaged_immediate_rejected(self, kmeans_dme):
        sabotaged = kmeans_dme.secondary.copy()
        for instr in sabotaged.instructions():
            if (instr.mnemonic in ("addl", "addq", "subl", "subq")
                    and instr.operands
                    and isinstance(instr.operands[0], Imm)):
                instr.operands = (
                    Imm(instr.operands[0].value + 1),
                ) + instr.operands[1:]
                break
        with pytest.raises(TransformError, match="pure renaming"):
            verify_decorrelation(kmeans_dme, sabotaged, kmeans_dme.maps)

    def test_dropped_instruction_rejected(self, kmeans_dme):
        sabotaged = kmeans_dme.secondary.copy()
        block = sabotaged.functions[0].entry
        del block.instructions[0]
        with pytest.raises(TransformError, match="instruction counts"):
            verify_decorrelation(kmeans_dme, sabotaged, kmeans_dme.maps)

    def test_unmapped_register_swap_rejected(self, kmeans_dme):
        # An identity register map makes every acc/aux rename a mismatch.
        from repro.core.dme import DecorrelationMaps

        identity = DecorrelationMaps(
            seed=kmeans_dme.maps.seed,
            register_map={},
            slot_maps=kmeans_dme.maps.slot_maps,
        )
        with pytest.raises(TransformError, match="pure renaming"):
            verify_decorrelation(kmeans_dme, kmeans_dme.secondary, identity)


class TestFaultFreeEquality:
    def test_machine_dispatch_selects_lockstep_runner(self, kmeans_dme):
        assert isinstance(Machine(kmeans_dme), DmeMachine)
        assert type(Machine(kmeans_dme.plain())) is Machine

    def test_dme_run_matches_raw_bit_for_bit(self, kmeans_dme):
        dme_result = Machine(kmeans_dme).run()
        raw_result = Machine(kmeans_dme.plain()).run()
        assert dme_result.output == raw_result.output
        assert dme_result.exit_code == raw_result.exit_code
        assert (dme_result.dynamic_instructions
                == raw_result.dynamic_instructions)
        assert dme_result.fault_sites == raw_result.fault_sites

    def test_lockstep_gate_passes_and_covers_every_site(self, kmeans_dme):
        trace = lockstep_reference(kmeans_dme)
        plain = Machine(kmeans_dme.plain()).run()
        assert trace.dynamic_instructions == plain.dynamic_instructions
        assert len(trace.entries) == plain.fault_sites
        assert trace.output == plain.output
        assert trace.exit_code == plain.exit_code

    def test_timing_charges_both_versions(self, kmeans_dme):
        from repro.machine.timing import TimingConfig

        config = TimingConfig()
        paired = Machine(kmeans_dme).run(timing=config)
        single = Machine(kmeans_dme.plain()).run(timing=config)
        assert paired.cycles > 1.8 * single.cycles


class TestGeneratedPrograms:
    """Hypothesis-seeded property: decorrelation never produces a pair that
    disagrees fault-free, for arbitrary generator-grammar programs and
    arbitrary decorrelation seeds."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_SEEDS)
    def test_generated_pair_verifies_and_locksteps(self, seed):
        source = generate_program(seed)
        program = build_dme_program(compile_to_ir(source))
        trace = lockstep_reference(program)
        raw = Machine(program.plain()).run()
        assert trace.output == raw.output, \
            f"dme gate output mismatch for seed {seed}:\n{source}"
        assert trace.exit_code == raw.exit_code

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program_seed=st.integers(min_value=0, max_value=2**16 - 1),
           dme_seed=_SEEDS)
    def test_decorrelation_seed_is_free(self, program_seed, dme_seed):
        source = generate_program(program_seed)
        program = build_dme_program(compile_to_ir(source), seed=dme_seed)
        lockstep_reference(program)
