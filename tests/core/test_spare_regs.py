"""Register-plan tests, including scarcity fallbacks."""

from repro.asm.instructions import ins
from repro.asm.operands import Imm, Reg
from repro.asm.program import AsmBlock, AsmFunction
from repro.asm.registers import GPR64, get_register
from repro.core.config import FerrumConfig
from repro.core.spare_regs import build_register_plan


def _reg(name):
    return Reg(get_register(name))


def _backend_like_function() -> AsmFunction:
    """Uses the same registers the -O0 backend uses."""
    block = AsmBlock("f", [
        ins("pushq", _reg("rbp")),
        ins("movq", _reg("rsp"), _reg("rbp")),
        ins("subq", Imm(32), _reg("rsp")),
        ins("movl", Imm(1), _reg("eax")),
        ins("addl", _reg("ecx"), _reg("eax")),
        ins("movq", _reg("rbp"), _reg("rsp")),
        ins("popq", _reg("rbp")),
        ins("retq"),
    ])
    return AsmFunction("f", [block])


class TestAbundantRegisters:
    def test_full_plan(self):
        plan = build_register_plan(_backend_like_function(), FerrumConfig())
        assert plan.cmp_in_registers
        assert plan.general is not None
        assert plan.simd_scratch is not None
        assert plan.simd_available
        assert len(plan.scratch_pool()) >= 4

    def test_cmp_pair_not_in_scratch_pool(self):
        plan = build_register_plan(_backend_like_function(), FerrumConfig())
        pool = plan.scratch_pool()
        assert plan.cmp_a not in pool
        assert plan.cmp_b not in pool

    def test_plan_roots_disjoint(self):
        plan = build_register_plan(_backend_like_function(), FerrumConfig())
        roots = plan.spare_roots()
        assert len(roots) == len(set(roots))

    def test_xmm_assignment(self):
        plan = build_register_plan(_backend_like_function(), FerrumConfig())
        assert plan.xmm == (0, 1, 2, 3)


class TestScarcity:
    def _pretend_all_but(self, *free):
        used = frozenset(
            root for root in GPR64
            if root not in free and root not in ("rsp", "rbp")
        )
        return FerrumConfig(pretend_used_gprs=used)

    def test_one_spare_goes_to_general(self):
        config = self._pretend_all_but("r10")
        func = _backend_like_function()
        plan = build_register_plan(func, config)
        assert plan.general == "r10"
        assert not plan.cmp_in_registers
        assert plan.simd_scratch is None

    def test_cmp_falls_back_to_frame_slots(self):
        config = self._pretend_all_but("r10")
        func = _backend_like_function()
        plan = build_register_plan(func, config)
        assert plan.cmp_slot_a < 0 and plan.cmp_slot_b < 0
        assert plan.cmp_slot_a != plan.cmp_slot_b

    def test_frame_extended_for_cmp_slots(self):
        config = self._pretend_all_but("r10")
        func = _backend_like_function()
        before = func.entry.instructions[2].operands[0].value
        build_register_plan(func, config)
        after = func.entry.instructions[2].operands[0].value
        assert after == before + 16

    def test_frame_inserted_when_absent(self):
        config = self._pretend_all_but("r10")
        block = AsmBlock("g", [
            ins("pushq", _reg("rbp")),
            ins("movq", _reg("rsp"), _reg("rbp")),
            ins("movq", _reg("rbp"), _reg("rsp")),
            ins("popq", _reg("rbp")),
            ins("retq"),
        ])
        func = AsmFunction("g", [block])
        plan = build_register_plan(func, config)
        mnemonics = [i.mnemonic for i in func.entry.instructions[:3]]
        assert "subq" in mnemonics
        assert plan.cmp_slot_a < 0

    def test_simd_disabled_when_xmm_scarce(self):
        config = FerrumConfig(
            pretend_used_xmm=frozenset(f"ymm{i}" for i in range(13))
        )
        plan = build_register_plan(_backend_like_function(), config)
        assert not plan.simd_available

    def test_simd_disabled_by_config(self):
        plan = build_register_plan(
            _backend_like_function(), FerrumConfig(use_simd=False)
        )
        assert not plan.simd_available

    def test_two_spares_prioritize_general_then_simd(self):
        config = self._pretend_all_but("r10", "r11")
        plan = build_register_plan(_backend_like_function(), config)
        assert plan.general == "r10"
        assert plan.simd_scratch == "r11"
        assert not plan.cmp_in_registers
