"""HYBRID-ASSEMBLY-LEVEL-EDDI (AS1) tests."""

from repro.backend import compile_module
from repro.core.hybrid import CAPABILITIES, protect_program_hybrid
from repro.eddi.signatures import protect_branches_with_signatures
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir

SOURCE = """
int main() {
    int total = 0;
    for (int i = 0; i < 8; i++) {
        if (i % 2 == 0) { total += i * 3; }
    }
    print_int(total);
    return 0;
}
"""


def _hybrid_program():
    module = compile_to_ir(SOURCE)
    protect_branches_with_signatures(module)
    asm = compile_module(module)
    return asm, protect_program_hybrid(asm)


class TestHybrid:
    def test_capabilities_match_table1(self):
        assert CAPABILITIES["branch"] == "IR"
        assert CAPABILITIES["comparison"] == "IR"
        assert CAPABILITIES["basic"] == "AS1"
        assert CAPABILITIES["store"] == "AS1"

    def test_no_simd_in_output(self):
        _, (protected, _) = _hybrid_program()
        mnemonics = {i.mnemonic for i in protected.instructions()}
        assert not mnemonics & {"vinserti128", "vpxor", "vptest", "pinsrq"}

    def test_compares_left_untouched(self):
        _, (protected, stats) = _hybrid_program()
        assert stats.asm.compare_branches == 0
        assert stats.asm.compare_setcc == 0

    def test_scalar_duplication_applied(self):
        _, (protected, stats) = _hybrid_program()
        assert stats.asm.general_protected > 0
        assert stats.asm.simd_protected == 0

    def test_metadata(self):
        _, (protected, _) = _hybrid_program()
        assert protected.metadata["protection"] == "hybrid-assembly-eddi"

    def test_output_preserved(self):
        asm, (protected, _) = _hybrid_program()
        assert Machine(protected).run().output == Machine(asm).run().output

    def test_bigger_than_input(self):
        asm, (protected, _) = _hybrid_program()
        assert protected.static_size() > asm.static_size()
