"""Protection-invariant validator tests."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Reg
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import GPR64, get_register
from repro.core.config import FerrumConfig
from repro.core.validate import (
    check_batch_discipline,
    check_bracket_balance,
    check_checker_targets,
    check_flags_discipline,
    check_protection_invariants,
)
from repro.errors import TransformError
from repro.pipeline import build_variants


def _reg(name):
    return Reg(get_register(name))


def _program(instrs) -> AsmProgram:
    return AsmProgram([AsmFunction("f", [AsmBlock("f", list(instrs))])])


class TestFlagsDiscipline:
    def test_cmp_jcc_ok(self):
        check_flags_discipline(_program([
            ins("cmpl", Imm(0), _reg("eax")),
            ins("je", LabelRef("f")),
            ins("retq"),
        ]))

    def test_orphan_consumer_rejected(self):
        with pytest.raises(TransformError):
            check_flags_discipline(_program([
                ins("je", LabelRef("f")),
                ins("retq"),
            ]))

    def test_call_invalidates_flags(self):
        with pytest.raises(TransformError):
            check_flags_discipline(_program([
                ins("cmpl", Imm(0), _reg("eax")),
                ins("call", LabelRef("print_int")),
                ins("je", LabelRef("f")),
                ins("retq"),
            ]))


class TestCheckerTargets:
    def test_checker_must_hit_detect_block(self):
        program = _program([
            ins("cmpl", Imm(0), _reg("eax")),
            ins("jne", LabelRef("nowhere"), origin="check"),
            ins("retq"),
        ])
        program.functions[0].add_block("nowhere").append(ins("retq"))
        with pytest.raises(TransformError):
            check_checker_targets(program)

    def test_detect_block_accepted(self):
        program = _program([
            ins("cmpl", Imm(0), _reg("eax")),
            ins("jne", LabelRef("detect"), origin="check"),
            ins("retq"),
        ])
        detect = program.functions[0].add_block("detect")
        detect.append(ins("call", LabelRef("__eddi_detect")))
        detect.append(ins("retq"))
        check_checker_targets(program)


class TestBatchDiscipline:
    def test_vptest_needs_vpxor(self):
        with pytest.raises(TransformError):
            check_batch_discipline(_program([
                ins("vptest", _reg("ymm0"), _reg("ymm0")),
                ins("retq"),
            ]))

    def test_paired_ok(self):
        check_batch_discipline(_program([
            ins("vpxor", _reg("ymm1"), _reg("ymm0"), _reg("ymm0")),
            ins("vptest", _reg("ymm0"), _reg("ymm0")),
            ins("jne", LabelRef("f")),
            ins("retq"),
        ]))


class TestBracketBalance:
    def test_unbalanced_push_rejected(self):
        with pytest.raises(TransformError):
            check_bracket_balance(_program([
                ins("pushq", _reg("r10"), origin="pre"),
                ins("retq"),
            ]))

    def test_pop_before_push_rejected(self):
        with pytest.raises(TransformError):
            check_bracket_balance(_program([
                ins("popq", _reg("r10"), origin="pre"),
                ins("retq"),
            ]))

    def test_ordinary_push_pop_ignored(self):
        check_bracket_balance(_program([
            ins("pushq", _reg("rbp")),
            ins("retq"),
        ]))


SOURCE = """
int main() {
    int total = 0;
    for (int i = 1; i < 12; i++) {
        if (i % 3 == 0) { total += 100 / i; }
    }
    print_int(total);
    return 0;
}
"""


class TestOnRealTransforms:
    def test_ferrum_output_satisfies_all_invariants(self):
        build = build_variants(SOURCE, names=("ferrum",))
        check_protection_invariants(build["ferrum"].asm)

    def test_scarce_ferrum_output_satisfies_all_invariants(self):
        config = FerrumConfig(pretend_used_gprs=frozenset(
            r for r in GPR64 if r not in ("r10", "rsp", "rbp")
        ))
        build = build_variants(SOURCE, names=("ferrum",), config=config)
        check_protection_invariants(build["ferrum"].asm)

    def test_hybrid_output_satisfies_all_invariants(self):
        build = build_variants(SOURCE, names=("hybrid",))
        check_protection_invariants(build["hybrid"].asm)

    def test_ir_eddi_output_satisfies_structural_invariants(self):
        build = build_variants(SOURCE, names=("ir-eddi",))
        check_flags_discipline(build["ir-eddi"].asm)
        check_batch_discipline(build["ir-eddi"].asm)
