"""FERRUM transform tests: structure, semantics preservation, scarcity."""

import pytest

from repro.asm.instructions import InstrKind
from repro.asm.registers import GPR64
from repro.backend import compile_module
from repro.core.config import FerrumConfig
from repro.core.ferrum import CAPABILITIES, FerrumTransform, protect_program
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir

SOURCE = """
int scale(int x, int d) { return x * 5 / d; }

int main() {
    int* buf = malloc(24);
    for (int i = 0; i < 6; i++) { buf[i] = i * i - 3; }
    long total = 0;
    for (int i = 0; i < 6; i++) {
        if (buf[i] > 0) { total += scale(buf[i], 2); }
    }
    print_long(total);
    return 0;
}
"""


def _compile(source=SOURCE):
    return compile_module(compile_to_ir(source))


def _scarce_config(*free):
    used = frozenset(
        root for root in GPR64 if root not in free and root not in ("rsp", "rbp")
    )
    return FerrumConfig(pretend_used_gprs=used)


class TestStructure:
    def test_program_copy_not_mutated(self):
        raw = _compile()
        before = raw.static_size()
        protect_program(raw)
        assert raw.static_size() == before

    def test_metadata_tagged(self):
        protected, _ = protect_program(_compile())
        assert protected.metadata["protection"] == "ferrum"

    def test_detect_block_per_function(self):
        protected, _ = protect_program(_compile())
        for func in protected.functions:
            assert func.has_block(f".L{func.name}__ferrum_detect")

    def test_stats_accounting(self):
        raw = _compile()
        protected, stats = protect_program(raw)
        assert stats.functions == len(raw.functions)
        assert stats.simd_protected > 0
        assert stats.general_protected > 0
        assert stats.compare_branches > 0
        assert stats.idiv_protected > 0
        assert stats.convert_protected > 0
        assert stats.pop_protected > 0
        assert stats.output_instructions > stats.input_instructions
        assert stats.protected_instructions > 0

    def test_uses_simd_instructions(self):
        protected, _ = protect_program(_compile())
        mnemonics = {i.mnemonic for i in protected.instructions()}
        assert {"vinserti128", "vpxor", "vptest", "pinsrq"} <= mnemonics

    def test_every_protectable_instruction_covered(self):
        """Every register-writing original instruction must be followed by
        protection code before the block's next original instruction."""
        protected, stats = protect_program(_compile())
        covered = (stats.simd_protected + stats.general_protected
                   + stats.compare_branches + stats.compare_setcc
                   + stats.idiv_protected + stats.convert_protected
                   + stats.pop_protected)
        originals = [
            i for i in _compile().instructions()
            if i.is_fault_site() and i.kind not in (InstrKind.SETCC,)
        ]
        assert covered == len(originals)

    def test_capabilities_table(self):
        assert set(CAPABILITIES.values()) == {"AS2"}


class TestSemanticsPreserved:
    def test_output_identical(self):
        raw = _compile()
        protected, _ = protect_program(raw)
        assert Machine(protected).run().output == Machine(raw).run().output

    def test_output_identical_without_simd(self):
        raw = _compile()
        protected, _ = protect_program(raw, FerrumConfig(use_simd=False))
        assert Machine(protected).run().output == Machine(raw).run().output

    def test_output_identical_small_batch(self):
        raw = _compile()
        protected, _ = protect_program(raw, FerrumConfig(simd_batch=2))
        assert Machine(protected).run().output == Machine(raw).run().output

    @pytest.mark.parametrize("free", [("r10", "r11", "r12", "r13"),
                                      ("r10", "r11"), ("r10",)])
    def test_output_identical_under_scarcity(self, free):
        raw = _compile()
        protected, stats = protect_program(raw, _scarce_config(*free))
        assert Machine(protected).run().output == Machine(raw).run().output

    def test_scarcity_uses_requisition(self):
        raw = _compile()
        _, stats = protect_program(raw, _scarce_config("r10"))
        assert stats.requisitioned_uses > 0

    def test_scarce_mode_emits_push_pop_brackets(self):
        protected, _ = protect_program(_compile(), _scarce_config("r10"))
        text_mnemonics = [i.mnemonic for i in protected.instructions()
                          if i.origin == "pre"]
        assert "pushq" in text_mnemonics and "popq" in text_mnemonics

    def test_workload_heavy_division(self):
        source = """
        int main() {
            long acc = 0;
            for (int i = 1; i < 30; i++) { acc += 1000 / i + 1000 % i; }
            print_long(acc);
            return 0;
        }
        """
        raw = _compile(source)
        protected, _ = protect_program(raw)
        assert Machine(protected).run().output == Machine(raw).run().output


class TestIdempotenceGuard:
    def test_transform_on_instrumented_input_skips_it(self):
        """Protection code from an IR pass must not be re-duplicated."""
        from repro.eddi.signatures import protect_branches_with_signatures

        module = compile_to_ir(SOURCE)
        protect_branches_with_signatures(module)
        program = compile_module(module)
        tagged = sum(1 for i in program.instructions()
                     if i.origin != "orig")
        assert tagged > 0
        protected, stats = FerrumTransform(
            FerrumConfig(use_simd=False, protect_compares=False)
        ).protect(program)
        # Instrumentation instructions appear unchanged in the output.
        out_tagged = sum(1 for i in protected.instructions()
                         if i.origin in ("check", "instrumentation"))
        assert out_tagged >= tagged
