"""Scalar duplication recipe tests (Fig. 4 + special shapes)."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.registers import get_register
from repro.core.general_dup import (
    convert_recipe,
    general_recipe,
    idiv_recipe,
    pop_recipe,
    reexecute_into,
)
from repro.errors import TransformError

DETECT = ".Ldetect"


def _reg(name):
    return Reg(get_register(name))


def _mem(disp=-8):
    return Mem(disp=disp, base=get_register("rbp"))


class TestReexecute:
    def test_dest_redirected(self):
        dup = reexecute_into(ins("movq", _mem(), _reg("rax")), "r10")
        assert dup.dest == _reg("r10")
        assert dup.operands[0] == _mem()
        assert dup.origin == "dup"

    def test_width_preserved(self):
        dup = reexecute_into(ins("movl", Imm(3), _reg("eax")), "r10")
        assert dup.dest == Reg(get_register("r10d"))

    def test_rmw_sources_remapped(self):
        dup = reexecute_into(ins("addl", _reg("eax"), _reg("eax")), "r10")
        assert dup.operands[0] == Reg(get_register("r10d"))
        assert dup.operands[1] == Reg(get_register("r10d"))

    def test_memory_base_remapped(self):
        instr = ins("movq", Mem(base=get_register("rax")), _reg("rax"))
        dup = reexecute_into(instr, "r10")
        assert dup.operands[0].base.root == "r10"

    def test_store_rejected(self):
        with pytest.raises(TransformError):
            reexecute_into(ins("movq", _reg("rax"), _mem()), "r10")

    def test_shift_by_own_count_register_rejected(self):
        instr = ins("shll", Reg(get_register("cl")), _reg("ecx"))
        with pytest.raises(TransformError):
            reexecute_into(instr, "r10")


class TestGeneralRecipe:
    def test_non_rmw_has_no_precopy(self):
        pre, post = general_recipe(ins("movq", _mem(), _reg("rax")), "r10",
                                   DETECT)
        assert pre == []
        assert [i.mnemonic for i in post] == ["movq", "cmpq", "jne"]
        assert post[-1].target_label == DETECT

    def test_rmw_gets_precopy(self):
        pre, post = general_recipe(ins("addq", Imm(4), _reg("rax")), "r10",
                                   DETECT)
        assert len(pre) == 1 and pre[0].mnemonic == "movq"
        assert pre[0].operands == (_reg("rax"), _reg("r10"))

    def test_check_width_follows_dest(self):
        _, post = general_recipe(ins("movl", Imm(1), _reg("eax")), "r10",
                                 DETECT)
        assert post[1].mnemonic == "cmpl"

    def test_check_is_non_destructive(self):
        _, post = general_recipe(ins("movq", _mem(), _reg("rax")), "r10",
                                 DETECT)
        cmp_instr = post[1]
        assert cmp_instr.dest_registers()[0].name == "rflags"


class TestConvertRecipe:
    def test_cltd_uses_arithmetic_shift(self):
        seq = convert_recipe(ins("cltd"), "r10", DETECT)
        assert [i.mnemonic for i in seq] == ["movl", "sarl", "cmpl", "jne"]
        assert seq[1].operands[0] == Imm(31)

    def test_cqto(self):
        seq = convert_recipe(ins("cqto"), "r10", DETECT)
        assert [i.mnemonic for i in seq] == ["movq", "sarq", "cmpq", "jne"]
        assert seq[1].operands[0] == Imm(63)

    def test_cltq_uses_movslq(self):
        seq = convert_recipe(ins("cltq"), "r10", DETECT)
        assert seq[0].mnemonic == "movslq"


class TestPopRecipe:
    def test_memory_compare_no_scratch(self):
        seq = pop_recipe(ins("popq", _reg("rbp")), DETECT)
        assert [i.mnemonic for i in seq] == ["cmpq", "jne"]
        mem = seq[0].operands[0]
        assert mem.disp == -8 and mem.base.root == "rsp"


class TestIdivRecipe:
    SPARES = ("r10", "r11", "r12", "r13")

    def test_structure(self):
        pre, post = idiv_recipe(ins("idivl", _reg("ecx")), self.SPARES, DETECT)
        assert [i.mnemonic for i in pre] == ["movq", "movq"]
        assert [i.mnemonic for i in post] == [
            "movq", "movq", "movq", "movq", "idivl",
            "cmpl", "jne", "cmpl", "jne",
        ]

    def test_64bit_compares(self):
        _, post = idiv_recipe(ins("idivq", _reg("rcx")), self.SPARES, DETECT)
        assert post[5].mnemonic == "cmpq"

    def test_source_in_rax_rejected(self):
        with pytest.raises(TransformError):
            idiv_recipe(ins("idivl", _reg("eax")), self.SPARES, DETECT)

    def test_memory_source_allowed(self):
        pre, post = idiv_recipe(ins("idivl", _mem()), self.SPARES, DETECT)
        assert post[4].operands[0] == _mem()
