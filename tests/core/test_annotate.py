"""Annotation (SIMD-ENABLED vs GENERAL classification) tests."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.registers import get_register
from repro.core.annotate import Protection, classify_block, is_rmw
from repro.errors import TransformError


def _reg(name):
    return Reg(get_register(name))


def _mem(disp=-8, base="rbp"):
    return Mem(disp=disp, base=get_register(base))


def classify_one(instr, *followers):
    return classify_block([instr, *followers])[0].protection


class TestIsRmw:
    def test_alu_is_rmw(self):
        assert is_rmw(ins("addl", Imm(1), _reg("eax")))

    def test_plain_load_not_rmw(self):
        assert not is_rmw(ins("movq", _mem(), _reg("rax")))

    def test_load_through_own_dest_is_rmw(self):
        instr = ins("movq", Mem(base=get_register("rax")), _reg("rax"))
        assert is_rmw(instr)

    def test_store_not_rmw(self):
        assert not is_rmw(ins("movq", _reg("rax"), _mem()))

    def test_movzbl_same_root_is_rmw(self):
        assert is_rmw(ins("movzbl", _reg("al"), _reg("eax")))

    def test_reg_to_reg_mov_not_rmw(self):
        assert not is_rmw(ins("movq", _reg("rsp"), _reg("rbp")))


class TestClassification:
    def test_load_is_simd_enabled(self):
        assert classify_one(ins("movq", _mem(), _reg("rax")),
                            ins("retq")) is Protection.SIMD

    def test_lea_is_simd_enabled(self):
        assert classify_one(ins("leaq", _mem(), _reg("rax")),
                            ins("retq")) is Protection.SIMD

    def test_rmw_mov_is_general(self):
        instr = ins("movzbl", _reg("al"), _reg("eax"))
        assert classify_one(instr, ins("retq")) is Protection.GENERAL

    def test_alu_is_general(self):
        assert classify_one(ins("addl", Imm(1), _reg("eax")),
                            ins("retq")) is Protection.GENERAL

    def test_shift_is_general(self):
        assert classify_one(ins("shll", Imm(2), _reg("eax")),
                            ins("retq")) is Protection.GENERAL

    def test_store_is_none(self):
        assert classify_one(ins("movq", _reg("rax"), _mem()),
                            ins("retq")) is Protection.NONE

    def test_push_call_ret_are_none(self):
        anns = classify_block([
            ins("pushq", _reg("rax")),
            ins("call", LabelRef("f")),
            ins("retq"),
        ])
        assert all(a.protection is Protection.NONE for a in anns)

    def test_idiv_convert_pop(self):
        anns = classify_block([
            ins("cltd"),
            ins("idivl", _reg("ecx")),
            ins("popq", _reg("rbp")),
            ins("retq"),
        ])
        assert anns[0].protection is Protection.CONVERT
        assert anns[1].protection is Protection.IDIV
        assert anns[2].protection is Protection.POP


class TestComparePairing:
    def test_cmp_then_jcc(self):
        jcc = ins("jl", LabelRef(".L1"))
        anns = classify_block([ins("cmpl", Imm(0), _reg("eax")), jcc])
        assert anns[0].protection is Protection.COMPARE
        assert anns[0].consumer is jcc

    def test_cmp_then_setcc(self):
        setcc = ins("setl", _reg("al"))
        anns = classify_block(
            [ins("cmpl", Imm(0), _reg("eax")), setcc, ins("retq")]
        )
        assert anns[0].protection is Protection.COMPARE_SETCC
        assert anns[1].protection is Protection.NONE  # folded into the pair

    def test_test_instruction_paired_too(self):
        anns = classify_block([
            ins("testl", _reg("eax"), _reg("eax")),
            ins("je", LabelRef(".L1")),
        ])
        assert anns[0].protection is Protection.COMPARE

    def test_unconsumed_cmp_rejected(self):
        with pytest.raises(TransformError):
            classify_block([ins("cmpl", Imm(0), _reg("eax")), ins("retq")])

    def test_cmp_at_block_end_rejected(self):
        with pytest.raises(TransformError):
            classify_block([ins("cmpl", Imm(0), _reg("eax"))])
