"""SIMD batcher tests (Fig. 6)."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, Mem, Reg
from repro.asm.registers import get_register
from repro.core.config import FerrumConfig
from repro.core.simd_dup import SimdBatcher
from repro.core.spare_regs import RegisterPlan
from repro.errors import TransformError

DETECT = ".Ldetect"


def _plan(**overrides) -> RegisterPlan:
    defaults = dict(general="r10", simd_scratch="r13", cmp_a="r11",
                    cmp_b="r12", xmm=(0, 1, 2, 3), extra=("r14", "r15"))
    defaults.update(overrides)
    return RegisterPlan(**defaults)


def _reg(name):
    return Reg(get_register(name))


def _load64(disp=-8):
    return ins("movq", Mem(disp=disp, base=get_register("rbp")), _reg("rax"))


def _load32(disp=-8):
    return ins("movl", Mem(disp=disp, base=get_register("rbp")), _reg("eax"))


class TestCapture:
    def test_direct_load_goes_straight_to_lane(self):
        batcher = SimdBatcher(_plan(), DETECT)
        out = batcher.capture(_load64())
        mnemonics = [i.mnemonic for i in out]
        assert mnemonics == ["movq", "movq"]  # orig capture + lane re-exec
        # Second movq reads memory into xmm0 (the dup register).
        assert out[1].operands[1] == _reg("xmm0")

    def test_indirect_capture_uses_scratch(self):
        batcher = SimdBatcher(_plan(), DETECT)
        out = batcher.capture(_load32())
        mnemonics = [i.mnemonic for i in out]
        assert mnemonics == ["movq", "movl", "movq"]
        assert out[1].dest == Reg(get_register("r13d"))

    def test_lane1_uses_pinsrq(self):
        batcher = SimdBatcher(_plan(), DETECT)
        batcher.capture(_load64())
        out = batcher.capture(_load64(-16))
        assert out[0].mnemonic == "pinsrq"
        assert out[0].operands[0] == Imm(1)

    def test_second_pair_uses_high_xmm(self):
        batcher = SimdBatcher(_plan(), DETECT)
        batcher.capture(_load64())
        batcher.capture(_load64())
        out = batcher.capture(_load64())
        assert out[0].operands[-1] == _reg("xmm3")  # orig pair, high

    def test_batch_of_four_auto_flushes(self):
        batcher = SimdBatcher(_plan(), DETECT)
        for _ in range(3):
            batcher.capture(_load64())
        out = batcher.capture(_load64())
        mnemonics = [i.mnemonic for i in out]
        assert mnemonics[-5:] == ["vinserti128", "vinserti128", "vpxor",
                                  "vptest", "jne"]
        assert batcher.count == 0
        assert batcher.flushes == 1

    def test_capture_without_xmm_plan_rejected(self):
        batcher = SimdBatcher(_plan(xmm=None), DETECT)
        with pytest.raises(TransformError):
            batcher.capture(_load64())

    def test_capture_without_scratch_rejected(self):
        batcher = SimdBatcher(_plan(simd_scratch=None), DETECT)
        with pytest.raises(TransformError):
            batcher.capture(_load32())

    def test_requisitioned_scratch_accepted(self):
        batcher = SimdBatcher(_plan(simd_scratch=None), DETECT)
        batcher.scratch_requisitioned = "r9"
        out = batcher.capture(_load32())
        assert out[1].dest == Reg(get_register("r9d"))


class TestFlush:
    def test_empty_flush_is_noop(self):
        assert SimdBatcher(_plan(), DETECT).flush() == []

    def test_partial_flush_equalizes_upper_lane(self):
        batcher = SimdBatcher(_plan(), DETECT)
        batcher.capture(_load64())
        out = batcher.flush()
        inserts = [i for i in out if i.mnemonic == "vinserti128"]
        assert len(inserts) == 2
        # Both upper lanes filled from the same xmm (dup low).
        assert inserts[0].operands[1] == inserts[1].operands[1]

    def test_three_lane_flush_uses_high_pair(self):
        batcher = SimdBatcher(_plan(), DETECT)
        for _ in range(3):
            batcher.capture(_load64())
        out = batcher.flush()
        inserts = [i for i in out if i.mnemonic == "vinserti128"]
        sources = {str(i.operands[1]) for i in inserts}
        assert sources == {"%xmm2", "%xmm3"}

    def test_flush_targets_detect_label(self):
        batcher = SimdBatcher(_plan(), DETECT)
        batcher.capture(_load64())
        assert batcher.flush()[-1].target_label == DETECT

    def test_smaller_batch_size(self):
        batcher = SimdBatcher(_plan(), DETECT, batch_size=2)
        batcher.capture(_load64())
        out = batcher.capture(_load64())
        assert out[-1].mnemonic == "jne"  # flushed at 2
