"""Workload registry and behaviour tests."""

import pytest

from repro.errors import WorkloadError
from repro.ir.interp import IRInterpreter
from repro.machine.cpu import Machine
from repro.backend import compile_module
from repro.minic import compile_to_ir
from repro.workloads import all_workloads, get_workload, workload_names


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(all_workloads()) == 8

    def test_table2_names(self):
        assert workload_names() == (
            "backprop", "bfs", "pathfinder", "lud", "needle",
            "knn", "kmeans", "particlefilter",
        )

    def test_domains_match_table2(self):
        domains = {spec.name: spec.domain for spec in all_workloads()}
        assert domains["backprop"] == "Machine Learning"
        assert domains["bfs"] == "Graph Algorithm"
        assert domains["pathfinder"] == "Dynamic Programming"
        assert domains["lud"] == "Linear Algebra"
        assert domains["needle"] == "Dynamic Programming"
        assert domains["knn"] == "Machine Learning"
        assert domains["kmeans"] == "Data Mining"
        assert domains["particlefilter"] == "Noise estimator"

    def test_all_from_rodinia(self):
        assert {spec.suite for spec in all_workloads()} == {"Rodinia"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("doom")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("bfs").source(0)


@pytest.mark.parametrize("name", workload_names())
class TestEachWorkload:
    def test_compiles_and_runs(self, name):
        module = compile_to_ir(get_workload(name).source(1))
        result = IRInterpreter(module).run()
        assert result.exit_code == 0
        assert len(result.output) >= 2  # at least two checksum lines

    def test_compiled_matches_interpreter(self, name):
        module = compile_to_ir(get_workload(name).source(1))
        ir_out = IRInterpreter(module).run().output
        asm_out = Machine(compile_module(module)).run().output
        assert asm_out == ir_out

    def test_deterministic(self, name):
        module = compile_to_ir(get_workload(name).source(1))
        machine = Machine(compile_module(module))
        assert machine.run().output == machine.run().output


class TestScaling:
    def test_scale_grows_work(self):
        spec = get_workload("pathfinder")
        small = Machine(compile_module(compile_to_ir(spec.source(1))))
        large = Machine(compile_module(compile_to_ir(spec.source(2))))
        assert large.run().dynamic_instructions > \
            small.run().dynamic_instructions * 1.5
