"""Determinism guarantees across the whole stack.

Reproducibility is a stated property of this artifact: identical inputs
must yield bit-identical compilations, executions, cycle counts and
campaign statistics. These tests pin it end to end.
"""

from repro.asm.printer import format_program
from repro.faultinjection.campaign import run_campaign
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants

SOURCE = """
int main() {
    srand(77);
    long total = 0;
    for (int i = 0; i < 15; i++) { total += rand_next() % 101 - 50; }
    print_long(total);
    return 0;
}
"""


class TestCompilationDeterminism:
    def test_identical_builds(self):
        first = build_variants(SOURCE)
        second = build_variants(SOURCE)
        for name in first.variants:
            assert format_program(first[name].asm) == \
                format_program(second[name].asm), name


class TestExecutionDeterminism:
    def test_runs_identical_across_machines(self):
        build = build_variants(SOURCE, names=("ferrum",))
        a = Machine(build["ferrum"].asm).run()
        b = Machine(build["ferrum"].asm).run()
        assert (a.output, a.exit_code, a.dynamic_instructions,
                a.fault_sites) == \
            (b.output, b.exit_code, b.dynamic_instructions, b.fault_sites)

    def test_cycles_identical_across_builds(self):
        first = build_variants(SOURCE, names=("raw",))
        second = build_variants(SOURCE, names=("raw",))
        timing = TimingConfig()
        assert Machine(first["raw"].asm).run(timing=timing).cycles == \
            Machine(second["raw"].asm).run(timing=timing).cycles


class TestCampaignDeterminism:
    def test_campaign_identical_across_builds(self):
        first = build_variants(SOURCE, names=("raw",))
        second = build_variants(SOURCE, names=("raw",))
        a = run_campaign(first["raw"].asm, samples=20, seed=5)
        b = run_campaign(second["raw"].asm, samples=20, seed=5)
        assert a.outcomes.counts == b.outcomes.counts
        assert a.fault_sites == b.fault_sites
