"""Property test: protection transforms preserve generated-program behaviour.

Hypothesis draws seeds for the grammar-based fuzz generator
(:mod:`repro.fuzz.generator`); for each generated program all four
variants must produce identical output, and the raw binary must agree
with direct IR interpretation. This replaces an earlier hand-rolled
seven-template strategy with the full generator grammar (helpers with
calls, nested control flow, arrays, guarded division) — historically the
kind of test that finds flag-liveness and batching-flush bugs in the
transforms; the generator's first run caught a real ``set<cc>``
partial-register clobber in deferred flag detection.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import Subject, run_ir, run_machine
from repro.machine.cpu import Machine
from repro.pipeline import build_variants

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestGeneratedPrograms:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_SEEDS)
    def test_all_variants_agree(self, seed):
        source = generate_program(seed)
        build = build_variants(source)
        outputs = set()
        for variant in build.variants.values():
            result = Machine(variant.asm).run()
            outputs.add((result.output, result.exit_code))
        assert len(outputs) == 1, \
            f"variants diverged for seed {seed}:\n{source}"

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_SEEDS)
    def test_machine_matches_ir_interpreter(self, seed):
        source = generate_program(seed)
        subject = Subject(source)
        machine = run_machine(subject.build["raw"].asm)
        interp = run_ir(subject.build["raw"].ir)
        assert machine == interp, \
            f"cross-layer divergence for seed {seed}:\n{source}"
