"""Property test: protection transforms preserve generated-program behaviour.

Hypothesis generates small mini-C programs (arithmetic, branches, loops,
arrays); for each, all four variants must produce identical output. This
complements the fixed-program equivalence tests with adversarial shapes —
historically the kind of test that finds flag-liveness and batching-flush
bugs in the transforms.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine.cpu import Machine
from repro.pipeline import build_variants

_SMALL = st.integers(-30, 30)
_POS = st.integers(1, 30)


@st.composite
def _program(draw):
    n = draw(st.integers(2, 6))
    seed_vals = [draw(_SMALL) for _ in range(n)]
    divisor = draw(_POS)
    threshold = draw(_SMALL)
    body_ops = draw(st.lists(st.sampled_from([
        "acc += arr[i] * 2;",
        "acc -= arr[i] / DIV;",
        "acc += arr[i] % DIV;",
        "if (arr[i] > THR) { acc += 1; } else { acc -= 1; }",
        "if (arr[i] > THR && acc > 0) { acc = acc * 2; }",
        "acc = acc ^ arr[i];",
        "arr[i] = arr[i] + acc;",
    ]), min_size=1, max_size=5))
    inits = "\n    ".join(
        f"arr[{i}] = {value};" for i, value in enumerate(seed_vals)
    )
    body = "\n        ".join(body_ops) \
        .replace("DIV", str(divisor)).replace("THR", str(threshold))
    return f"""
int main() {{
    int* arr = malloc({n * 4});
    {inits}
    long acc = 0;
    for (int i = 0; i < {n}; i++) {{
        {body}
    }}
    print_long(acc);
    for (int i = 0; i < {n}; i++) {{ print_int(arr[i]); }}
    return 0;
}}
"""


class TestGeneratedPrograms:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_program())
    def test_all_variants_agree(self, source):
        build = build_variants(source)
        outputs = set()
        for variant in build.variants.values():
            result = Machine(variant.asm).run()
            outputs.add((result.output, result.exit_code))
        assert len(outputs) == 1, f"variants diverged for:\n{source}"
