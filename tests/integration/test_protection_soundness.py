"""Protection soundness: sweeping fault injection over every dynamic site.

This is the strongest guarantee in the suite: for a small program, inject a
fault at *every* dynamic fault site (with several register/bit picks) and
assert that FERRUM and the hybrid baseline never let an SDC through —
the paper's 100 % coverage claim, checked exhaustively rather than sampled.
"""

import pytest

from repro.faultinjection.injector import FaultPlan, inject_asm_fault
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine
from repro.pipeline import build_variants

#: Small but representative: arithmetic, branch, call, memory, division.
PROGRAM = """
int twice(int v) { return v * 2; }

int main() {
    int* p = malloc(16);
    p[0] = 9; p[1] = 4;
    int q = p[0] / p[1];
    if (q > 1 && p[1] < p[0]) { q = twice(q + 3); }
    print_int(q);
    return q;
}
"""

#: (register_pick, bit_pick) pairs: low/mid/high bits of first/last dest.
PICKS = ((0.0, 0.01), (0.0, 0.45), (0.0, 0.95), (0.9, 0.3))


def _sweep(program):
    machine = Machine(program)
    golden = machine.run()
    counts = {outcome: 0 for outcome in Outcome}
    for site in range(golden.fault_sites):
        for register_pick, bit_pick in PICKS:
            plan = FaultPlan(site, register_pick, bit_pick)
            outcome = inject_asm_fault(program, plan, golden, machine=machine)
            counts[outcome] += 1
    return counts, golden.fault_sites


@pytest.fixture(scope="module")
def build():
    return build_variants(PROGRAM)


class TestExhaustiveSweep:
    def test_raw_program_is_vulnerable(self, build):
        counts, sites = _sweep(build["raw"].asm)
        assert counts[Outcome.SDC] > 0
        assert counts[Outcome.DETECTED] == 0

    def test_ferrum_no_sdc_at_any_site(self, build):
        counts, sites = _sweep(build["ferrum"].asm)
        assert sites > 200  # the sweep is genuinely large
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.DETECTED] > 0

    def test_hybrid_no_sdc_at_any_site(self, build):
        counts, _ = _sweep(build["hybrid"].asm)
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.DETECTED] > 0

    def test_ir_eddi_leaks_sdcs_at_assembly_level(self, build):
        """The cross-layer gap, exhaustively: IR-level EDDI leaves
        assembly-level fault sites unprotected."""
        counts, _ = _sweep(build["ir-eddi"].asm)
        assert counts[Outcome.SDC] > 0
        assert counts[Outcome.DETECTED] > 0  # but it does catch many


class TestFerrumNoSimdSweep:
    def test_scalar_only_ferrum_also_fully_covers(self, build):
        from repro.core.config import FerrumConfig

        scalar = build_variants(
            PROGRAM, names=("ferrum",), config=FerrumConfig(use_simd=False)
        )
        counts, _ = _sweep(scalar["ferrum"].asm)
        assert counts[Outcome.SDC] == 0
