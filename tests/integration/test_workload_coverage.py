"""Per-workload protection equivalence and quick coverage spot checks.

The benchmark suite measures coverage at scale; these tests pin the
invariants cheaply for every Table II workload so a regression in any
transform fails `pytest tests/` rather than only the benchmark run.
"""

import pytest

from repro.faultinjection.campaign import run_campaign
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine
from repro.pipeline import build_variants
from repro.workloads import get_workload, workload_names

_builds = {}


def _build(name):
    if name not in _builds:
        _builds[name] = build_variants(get_workload(name).source(1))
    return _builds[name]


@pytest.mark.parametrize("name", workload_names())
def test_all_variants_preserve_output(name):
    build = _build(name)
    outputs = set()
    for variant in build.variants.values():
        result = Machine(variant.asm).run()
        outputs.add((result.output, result.exit_code))
    assert len(outputs) == 1


@pytest.mark.parametrize("name", ("bfs", "kmeans"))
def test_ferrum_spot_coverage(name):
    """A small campaign on two contrasting workloads (graph traversal and
    division-heavy clustering): FERRUM must show zero SDCs."""
    build = _build(name)
    campaign = run_campaign(build["ferrum"].asm, samples=25, seed=123)
    assert campaign.outcomes[Outcome.SDC] == 0
    assert campaign.outcomes[Outcome.DETECTED] > 0


@pytest.mark.parametrize("name", ("bfs", "kmeans"))
def test_hybrid_spot_coverage(name):
    build = _build(name)
    campaign = run_campaign(build["hybrid"].asm, samples=25, seed=123)
    assert campaign.outcomes[Outcome.SDC] == 0


def test_ferrum_static_blowup_is_bounded():
    """Protection cost sanity: FERRUM's static size stays within ~4x."""
    for name in workload_names():
        build = _build(name)
        ratio = build["ferrum"].static_size / build["raw"].static_size
        assert 1.5 < ratio < 4.5, f"{name}: unexpected blowup {ratio:.2f}"
