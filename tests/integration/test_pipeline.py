"""Pipeline integration tests over all four variants."""

import pytest

from repro.errors import ReproError
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import VARIANTS, build_variants


class TestVariantEquivalence:
    def test_all_variants_same_output(self, small_build):
        outputs = {}
        for name, variant in small_build.variants.items():
            result = Machine(variant.asm).run()
            outputs[name] = (result.output, result.exit_code)
        assert len(set(outputs.values())) == 1

    def test_variant_names(self, small_build):
        assert tuple(small_build.variants) == VARIANTS

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            build_variants("int main() { return 0; }", names=("bogus",))

    def test_missing_variant_lookup_rejected(self):
        build = build_variants("int main() { return 0; }", names=("raw",))
        with pytest.raises(ReproError):
            build["ferrum"]


class TestSizeAndCost:
    def test_static_size_ordering(self, small_build):
        sizes = {n: v.static_size for n, v in small_build.variants.items()}
        assert sizes["raw"] < sizes["ir-eddi"]
        assert sizes["raw"] < sizes["ferrum"]
        assert sizes["raw"] < sizes["hybrid"]

    def test_overhead_ordering(self, small_build):
        cycles = {}
        for name, variant in small_build.variants.items():
            cycles[name] = Machine(variant.asm).run(
                timing=TimingConfig()
            ).cycles
        assert cycles["raw"] < cycles["ferrum"]
        assert cycles["ferrum"] < cycles["hybrid"]

    def test_transform_seconds_recorded(self, small_build):
        assert small_build["ferrum"].transform_seconds > 0
        assert small_build["hybrid"].transform_seconds > 0

    def test_stats_attached(self, small_build):
        assert small_build["ferrum"].stats.simd_protected > 0
        assert small_build["ir-eddi"].stats.duplicated > 0
        assert small_build["hybrid"].stats["asm"].asm.general_protected > 0


class TestMetadata:
    def test_protection_metadata(self, small_build):
        assert small_build["raw"].asm.metadata["protection"] == "none"
        assert small_build["ferrum"].asm.metadata["protection"] == "ferrum"
        assert small_build["hybrid"].asm.metadata["protection"] == \
            "hybrid-assembly-eddi"


class TestBuildInvariantEnforcement:
    """``build_variants`` must reject transforms that silently break
    protection discipline (regression: it used to run only structural
    validation, so a discipline-violating transform shipped quietly)."""

    SOURCE = "int main() { int x = 3; if (x > 1) { x = x + 1; } " \
             "print_int(x); return 0; }"

    def test_flags_discipline_violation_fails_the_build(self, monkeypatch):
        from repro.asm.instructions import InstrKind, ins
        from repro.asm.operands import LabelRef
        from repro.errors import TransformError
        from repro.machine.builtins import DETECT_FUNCTION
        import repro.pipeline as pipeline_mod

        real = pipeline_mod.protect_program

        def sabotaged(asm, config=None):
            program, stats = real(asm, config)
            # Clobber live flags: a call between a producer and its j<cc>.
            for func in program.functions:
                for block in func.blocks:
                    for index, instr in enumerate(block.instructions):
                        if instr.kind is InstrKind.JCC and index > 0:
                            block.instructions.insert(
                                index,
                                ins("call", LabelRef(DETECT_FUNCTION)))
                            return program, stats
            return program, stats

        monkeypatch.setattr(pipeline_mod, "protect_program", sabotaged)
        with pytest.raises(TransformError):
            build_variants(self.SOURCE, names=("raw", "ferrum"))

    def test_clean_build_still_passes(self):
        build = build_variants(self.SOURCE)
        assert tuple(build.variants) == VARIANTS
