"""Checkpointed campaign engine: bit-identical outcomes, parallel parity.

The checkpoint engine is pure execution strategy — for any fixed seed its
:class:`OutcomeCounts` must be indistinguishable from the replay engine's,
across checkpoint intervals, process counts, and workloads (the ISSUE's
acceptance bar: >= 3 workloads).
"""

import pytest

from repro.backend import compile_module
from repro.errors import InjectionError
from repro.faultinjection import campaign as campaign_mod
from repro.faultinjection.campaign import (
    _PARALLEL_STATE,
    _checkpoint_schedule,
    run_campaign,
    run_ir_campaign,
)
from repro.faultinjection.injector import FaultPlan
from repro.minic import compile_to_ir
from repro.workloads import get_workload
from tests.faultinjection.parity import (
    assert_campaigns_identical,
    assert_counts_identical,
)

#: Three Rodinia workloads at the smallest scale (acceptance: >= 3).
WORKLOADS = ("bfs", "knn", "pathfinder")
SAMPLES = 12
SEED = 21


@pytest.fixture(scope="module")
def built():
    out = {}
    for name in WORKLOADS:
        ir = compile_to_ir(get_workload(name).source(1))
        out[name] = (ir, compile_module(ir))
    return out


class TestBitIdenticalOutcomes:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_checkpoint_matches_replay(self, built, name):
        _, program = built[name]
        replay = run_campaign(program, samples=SAMPLES, seed=SEED,
                              engine="replay")
        checkpointed = run_campaign(program, samples=SAMPLES, seed=SEED,
                                    engine="checkpoint")
        assert_counts_identical(checkpointed, replay, context=name)

    @pytest.mark.parametrize("interval", (1, 7, 500, None))
    def test_interval_does_not_change_outcomes(self, built, interval):
        _, program = built["bfs"]
        replay = run_campaign(program, samples=SAMPLES, seed=SEED,
                              engine="replay")
        checkpointed = run_campaign(program, samples=SAMPLES, seed=SEED,
                                    engine="checkpoint",
                                    checkpoint_interval=interval)
        assert checkpointed.outcomes.counts == replay.outcomes.counts

    def test_parallel_checkpoint_matches_sequential(self, built):
        _, program = built["knn"]
        sequential = run_campaign(program, samples=SAMPLES, seed=SEED)
        parallel = run_campaign(program, samples=SAMPLES, seed=SEED,
                                processes=2)
        assert parallel.outcomes.counts == sequential.outcomes.counts

    def test_ir_checkpoint_matches_replay(self, built):
        for name in WORKLOADS:
            ir, _ = built[name]
            replay = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                     engine="replay")
            checkpointed = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                           engine="checkpoint")
            assert checkpointed.outcomes.counts == replay.outcomes.counts

    def test_ir_parallel_matches_sequential(self, built):
        ir, _ = built["bfs"]
        sequential = run_ir_campaign(ir, samples=SAMPLES, seed=SEED)
        parallel = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                   processes=2)
        assert parallel.outcomes.counts == sequential.outcomes.counts

    def test_unknown_engine_rejected(self, built):
        _, program = built["bfs"]
        with pytest.raises(InjectionError):
            run_campaign(program, samples=2, engine="warp")
        ir, _ = built["bfs"]
        with pytest.raises(InjectionError):
            run_ir_campaign(ir, samples=2, engine="warp")


class TestGeneratedProgramEngineEquivalence:
    """Engine parity must hold for arbitrary generated programs, not just
    the three curated workloads — the fuzz generator exercises control-flow
    and protection shapes the workloads never produce."""

    FUZZ_SEEDS = (3, 17, 58)

    @pytest.fixture(scope="class")
    def generated(self):
        from repro.fuzz.generator import generate_program
        from repro.pipeline import build_variants

        out = {}
        for fuzz_seed in self.FUZZ_SEEDS:
            build = build_variants(generate_program(fuzz_seed),
                                   names=("raw", "ferrum"))
            out[fuzz_seed] = build
        return out

    @pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
    def test_asm_engines_bit_identical(self, generated, fuzz_seed):
        program = generated[fuzz_seed]["ferrum"].asm
        replay = run_campaign(program, samples=SAMPLES, seed=SEED,
                              engine="replay", telemetry=True)
        checkpointed = run_campaign(program, samples=SAMPLES, seed=SEED,
                                    engine="checkpoint", telemetry=True)
        assert_campaigns_identical(checkpointed, replay,
                                   context=f"fuzz-{fuzz_seed}")

    @pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
    def test_ir_engines_bit_identical(self, generated, fuzz_seed):
        ir = generated[fuzz_seed]["raw"].ir
        replay = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                 engine="replay", telemetry=True)
        checkpointed = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                       engine="checkpoint", telemetry=True)
        assert_campaigns_identical(checkpointed, replay,
                                   context=f"ir fuzz-{fuzz_seed}")

    def test_parallel_matches_sequential_on_generated(self, generated):
        program = generated[self.FUZZ_SEEDS[0]]["ferrum"].asm
        sequential = run_campaign(program, samples=SAMPLES, seed=SEED)
        parallel = run_campaign(program, samples=SAMPLES, seed=SEED,
                                processes=2)
        assert parallel.outcomes.counts == sequential.outcomes.counts


class TestExecutionEngineEquivalence:
    """The machine's translated execution engine (``FERRUM_ENGINE``) must be
    invisible to campaigns: outcomes, fault-site populations, and telemetry
    records are bit-identical whether machines run translated or through the
    reference handler loop — under both campaign engines."""

    @pytest.fixture(scope="class")
    def corpus(self, built):
        from repro.fuzz.generator import generate_program
        from repro.pipeline import build_variants

        programs = {name: program for name, (_, program) in built.items()}
        for fuzz_seed in (3, 17):
            build = build_variants(generate_program(fuzz_seed),
                                   names=("ferrum",))
            programs[f"fuzz-{fuzz_seed}"] = build["ferrum"].asm
        return programs

    def _campaign(self, monkeypatch, program, machine_engine, **kwargs):
        monkeypatch.setenv("FERRUM_ENGINE", machine_engine)
        try:
            return run_campaign(program, samples=SAMPLES, seed=SEED,
                                telemetry=True, **kwargs)
        finally:
            monkeypatch.delenv("FERRUM_ENGINE")

    def test_campaigns_identical_across_machine_engines(self, corpus,
                                                        monkeypatch):
        for name, program in corpus.items():
            for campaign_engine in ("replay", "checkpoint"):
                reference = self._campaign(monkeypatch, program, "reference",
                                           engine=campaign_engine)
                translated = self._campaign(monkeypatch, program, "translated",
                                            engine=campaign_engine)
                assert_campaigns_identical(
                    translated, reference,
                    context=f"{name}/{campaign_engine}")

    def test_checkpoint_vs_replay_on_reference_engine(self, corpus,
                                                      monkeypatch):
        program = corpus["fuzz-3"]
        replay = self._campaign(monkeypatch, program, "reference",
                                engine="replay")
        checkpointed = self._campaign(monkeypatch, program, "reference",
                                      engine="checkpoint")
        assert_campaigns_identical(checkpointed, replay)


class TestCheckpointSchedule:
    def _plans(self, sites):
        return [(i, FaultPlan(site_index=s, register_pick=0.1, bit_pick=0.2))
                for i, s in enumerate(sites)]

    def test_exact_site_mode_groups_duplicates(self):
        schedule = _checkpoint_schedule(self._plans([30, 5, 30, 12]), None)
        assert [site for site, _ in schedule] == [5, 12, 30]
        assert len(schedule[-1][1]) == 2

    def test_interval_mode_floors_to_region(self):
        schedule = _checkpoint_schedule(self._plans([3, 12, 19, 25]), 10)
        assert [site for site, _ in schedule] == [0, 10, 20]
        assert [len(plans) for _, plans in schedule] == [1, 2, 1]

    def test_bad_interval_rejected(self):
        with pytest.raises(InjectionError):
            _checkpoint_schedule(self._plans([1]), 0)


def _boom(_):
    raise InjectionError("worker failure for the leak test")


class TestParallelStateHygiene:
    def test_state_cleared_after_success(self, built):
        _, program = built["bfs"]
        run_campaign(program, samples=4, seed=1, processes=2)
        assert _PARALLEL_STATE == {}

    def test_state_cleared_after_worker_failure(self):
        context = campaign_mod._fork_context()
        if context is None:
            pytest.skip("fork start method unavailable")
        _PARALLEL_STATE.update(marker=True)
        with pytest.raises(InjectionError):
            campaign_mod._pooled(context, 2, _boom, [1, 2, 3], chunksize=1)
        assert _PARALLEL_STATE == {}

    def test_sequential_fallback_without_fork(self, built, monkeypatch):
        _, program = built["bfs"]
        sequential = run_campaign(program, samples=SAMPLES, seed=SEED)
        monkeypatch.setattr(campaign_mod, "_fork_context", lambda: None)
        fallback = run_campaign(program, samples=SAMPLES, seed=SEED,
                                processes=4)
        assert fallback.outcomes.counts == sequential.outcomes.counts
        ir = compile_to_ir(get_workload("bfs").source(1))
        ir_sequential = run_ir_campaign(ir, samples=SAMPLES, seed=SEED)
        ir_fallback = run_ir_campaign(ir, samples=SAMPLES, seed=SEED,
                                      processes=4)
        assert ir_fallback.outcomes.counts == ir_sequential.outcomes.counts
