"""Outcome-equivalence pruning: bit-identical campaigns at a fraction of cost.

Pruning (``run_campaign(prune=True)``) classifies statically-masked fault
sites from the golden trace and collapses outcome-equivalent dynamic sites
into classes injected once. It is pure execution strategy: for any fixed
seed, the pruned campaign must report exactly the same aggregate outcome
counts, telemetry records, per-origin maps and JSONL content as the
unpruned one — only ``pruning_stats`` (and wall-clock) may differ.
"""

import json

import pytest

from repro.faultinjection.campaign import run_campaign
from repro.pipeline import build_variants
from repro.workloads import get_workload
from tests.faultinjection.parity import (
    assert_campaigns_identical,
    assert_counts_identical,
    assert_jsonl_identical,
    assert_origin_maps_identical,
)

WORKLOADS = ("bfs", "knn")
VARIANTS = ("raw", "ferrum")
SAMPLES = 25
SEED = 21


@pytest.fixture(scope="module")
def built():
    out = {}
    for name in WORKLOADS:
        build = build_variants(get_workload(name).source_fn(),
                               names=VARIANTS)
        out[name] = {variant: build[variant].asm for variant in VARIANTS}
    return out


class TestPrunedBitIdentity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_outcome_counts_identical(self, built, name, variant):
        program = built[name][variant]
        plain = run_campaign(program, samples=SAMPLES, seed=SEED)
        pruned = run_campaign(program, samples=SAMPLES, seed=SEED,
                              prune=True)
        assert_counts_identical(pruned, plain, context=f"{name}/{variant}")

    @pytest.mark.parametrize("engine", ("checkpoint", "replay"))
    def test_engines_agree_under_pruning(self, built, engine):
        program = built["bfs"]["ferrum"]
        plain = run_campaign(program, samples=SAMPLES, seed=SEED,
                             engine=engine)
        pruned = run_campaign(program, samples=SAMPLES, seed=SEED,
                              engine=engine, prune=True)
        assert_counts_identical(pruned, plain, context=engine)

    def test_telemetry_records_identical(self, built):
        """Synthesized and cloned records must be indistinguishable from
        executed ones — field for field, in run-index order."""
        program = built["knn"]["ferrum"]
        plain = run_campaign(program, samples=SAMPLES, seed=SEED,
                             telemetry=True)
        pruned = run_campaign(program, samples=SAMPLES, seed=SEED,
                              telemetry=True, prune=True)
        assert_campaigns_identical(pruned, plain)

    def test_per_origin_telemetry_identical(self, built):
        program = built["bfs"]["ferrum"]
        plain = run_campaign(program, samples=SAMPLES, seed=SEED,
                             telemetry=True)
        pruned = run_campaign(program, samples=SAMPLES, seed=SEED,
                              telemetry=True, prune=True)
        assert_origin_maps_identical(pruned.records, plain.records)

    def test_jsonl_content_identical(self, built, tmp_path):
        """The pruned campaign's JSONL sink must contain exactly the same
        records (run-index order; the unpruned checkpoint engine streams in
        site order, so compare as sorted line sets)."""
        program = built["bfs"]["ferrum"]
        plain_path = tmp_path / "plain.jsonl"
        pruned_path = tmp_path / "pruned.jsonl"
        run_campaign(program, samples=SAMPLES, seed=SEED, telemetry=True,
                     jsonl_path=plain_path)
        run_campaign(program, samples=SAMPLES, seed=SEED, telemetry=True,
                     jsonl_path=pruned_path, prune=True)
        assert_jsonl_identical(pruned_path, plain_path, ordered=False)
        # and the pruned file is complete: one record per sample
        pruned_lines = pruned_path.read_text().splitlines()
        assert len(pruned_lines) == SAMPLES
        assert all(json.loads(line)["level"] == "asm"
                   for line in pruned_lines)

    def test_parallel_pruned_matches_sequential(self, built):
        program = built["knn"]["ferrum"]
        sequential = run_campaign(program, samples=SAMPLES, seed=SEED,
                                  prune=True)
        parallel = run_campaign(program, samples=SAMPLES, seed=SEED,
                                prune=True, processes=2)
        assert_counts_identical(parallel, sequential)


class TestPruningStats:
    def test_stats_populated_only_when_pruning(self, built):
        program = built["bfs"]["ferrum"]
        plain = run_campaign(program, samples=SAMPLES, seed=SEED)
        pruned = run_campaign(program, samples=SAMPLES, seed=SEED,
                              prune=True)
        assert plain.pruning_stats is None
        stats = pruned.pruning_stats
        assert stats is not None
        assert stats.samples == SAMPLES

    def test_accounting_adds_up(self, built):
        program = built["bfs"]["ferrum"]
        stats = run_campaign(program, samples=SAMPLES, seed=SEED,
                             prune=True).pruning_stats
        synthesized = (stats.statically_masked + stats.detected
                       + stats.benign + stats.sdc)
        assert synthesized == stats.classified
        assert (stats.executed_injections + stats.classified
                + stats.duplicates_collapsed == stats.samples)
        assert 0.0 <= stats.executed_fraction <= 1.0

    def test_protected_variant_prunes_most_injections(self, built):
        """FERRUM-protected code is dominated by statically-classifiable
        sites; the scanner must prove a substantial majority without
        executing them (the benchmark gate asserts <= 60%)."""
        stats = run_campaign(built["bfs"]["ferrum"], samples=SAMPLES,
                             seed=SEED, prune=True).pruning_stats
        assert stats.executed_fraction <= 0.6
        assert stats.classified > 0


class TestPrunedStreaming:
    """Pruned campaigns must stream JSONL incrementally (the PR 2 contract),
    not buffer every record until the end — while keeping the file
    byte-identical to the buffered run-index order."""

    def test_pruned_file_is_run_index_ordered_and_complete(self, built,
                                                           tmp_path):
        program = built["knn"]["ferrum"]
        path = tmp_path / "pruned.jsonl"
        result = run_campaign(program, samples=SAMPLES, seed=SEED,
                              jsonl_path=path, prune=True)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["run_index"] for line in lines] \
            == list(range(SAMPLES))
        assert lines == [json.dumps(record.to_json(), sort_keys=True)
                         for record in result.records]

    def test_records_stream_as_they_complete(self):
        """Unit contract of the reorder buffer: records flush the moment
        the run-index prefix is contiguous, duplicates expand with their
        representative, synthesized records are available up front."""
        from repro.faultinjection.campaign import _RunOrderedWriter
        from repro.faultinjection.equivalence import PruningAnalysis
        from repro.faultinjection.outcome import Outcome
        from repro.faultinjection.telemetry import FaultRecord

        def record(run_index):
            return FaultRecord(
                run_index=run_index, level="asm", site_index=run_index,
                instruction="nop", mnemonic="nop", origin="app",
                register="rax", bit=0, outcome=Outcome.BENIGN,
                detection_latency=None,
            )

        class Spy:
            def __init__(self):
                self.seen = []

            def write(self, rec):
                self.seen.append(rec.run_index)

        # synthesized: runs 1 and 5; duplicates: run 4 clones run 0.
        analysis = PruningAnalysis(
            synthesized=[(1, record(1)), (5, record(5))],
            duplicates={0: [4]},
        )
        sink = Spy()
        writer = _RunOrderedWriter(sink, analysis)
        assert sink.seen == []          # nothing contiguous from 0 yet
        writer.write(record(2))
        assert sink.seen == []          # still waiting on run 0
        writer.write(record(0))         # releases 0,1,2 (clone 4 pends on 3)
        assert sink.seen == [0, 1, 2]
        writer.write(record(3))         # releases 3, then pending 4 and 5
        assert sink.seen == [0, 1, 2, 3, 4, 5]
