"""Multi-bit (double-fault) injection tests — the paper's future work."""

import pytest

from repro.asm.registers import get_register
from repro.faultinjection.multibit import (
    MultiBitPlan,
    _distinct_bit,
    inject_multibit_fault,
    run_multibit_campaign,
)
from repro.machine.flags import INJECTABLE_FLAG_BITS
from repro.faultinjection.injector import FaultPlan
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine
from repro.pipeline import build_variants
from repro.utils.rng import DeterministicRng
from repro.errors import InjectionError

SOURCE = """
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i++) { acc += i * 3; }
    print_int(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def build():
    return build_variants(SOURCE, names=("raw", "ferrum"))


class TestPlans:
    def test_spatial_pins_one_site(self):
        rng = DeterministicRng(4)
        plan = MultiBitPlan.sample_spatial(rng, 50)
        assert plan.spatial
        assert plan.first.register_pick == plan.second.register_pick

    def test_temporal_sites_sampled_independently(self):
        rng = DeterministicRng(4)
        plans = [MultiBitPlan.sample_temporal(rng.fork(i), 1000)
                 for i in range(20)]
        assert any(not p.spatial for p in plans)

    def test_empty_population_rejected(self):
        with pytest.raises(InjectionError):
            MultiBitPlan.sample_spatial(DeterministicRng(1), 0)


class TestInjection:
    def test_deterministic(self, build):
        program = build["raw"].asm
        golden = Machine(program).run()
        plan = MultiBitPlan(FaultPlan(3, 0.0, 0.2), FaultPlan(3, 0.0, 0.8))
        assert inject_multibit_fault(program, plan, golden) == \
            inject_multibit_fault(program, plan, golden)

    def test_double_fault_can_corrupt_raw(self, build):
        program = build["raw"].asm
        golden = Machine(program).run()
        outcomes = set()
        for site in range(0, golden.fault_sites, 5):
            plan = MultiBitPlan(FaultPlan(site, 0.0, 0.3),
                                FaultPlan(site, 0.0, 0.6))
            outcomes.add(inject_multibit_fault(program, plan, golden))
        assert Outcome.SDC in outcomes

    def test_spatial_same_bit_picks_do_not_cancel(self, build):
        # Regression: two picks resolving to the same bit used to flip it
        # twice — a no-op run misclassified as BENIGN 100% of the time.
        # With apply-time distinctness the pair is a real double fault, so
        # sweeping sites must disturb *some* run.
        program = build["raw"].asm
        golden = Machine(program).run()
        outcomes = set()
        for site in range(0, golden.fault_sites, 3):
            plan = MultiBitPlan(FaultPlan(site, 0.0, 0.42),
                                FaultPlan(site, 0.0, 0.42))
            outcomes.add(inject_multibit_fault(program, plan, golden))
        assert outcomes != {Outcome.BENIGN}

    def test_distinct_bit_wraps_register_width(self):
        eax = get_register("eax")
        assert _distinct_bit(eax, 3) == 4
        assert _distinct_bit(eax, eax.width - 1) == 0

    def test_distinct_bit_stays_in_injectable_flags(self):
        flags = get_register("rflags")
        for bit in INJECTABLE_FLAG_BITS:
            bumped = _distinct_bit(flags, bit)
            assert bumped in INJECTABLE_FLAG_BITS and bumped != bit

    def test_unreachable_site_raises(self, build):
        # Regression: a plan outside the dynamic site population used to
        # complete normally and classify as BENIGN; inject_asm_fault raises
        # for this, and the multi-bit injector must too.
        program = build["raw"].asm
        golden = Machine(program).run()
        bogus = golden.fault_sites + 5
        plan = MultiBitPlan(FaultPlan(bogus, 0.0, 0.3),
                            FaultPlan(bogus, 0.0, 0.6))
        with pytest.raises(InjectionError):
            inject_multibit_fault(program, plan, golden)

    def test_temporal_later_site_exempt_from_fired_check(self, build):
        # The second strike of a temporal pair may never arrive (the first
        # flip can divert control flow); only the earliest site is
        # asserted. A valid first site with an out-of-population second
        # site must classify, not raise.
        program = build["raw"].asm
        golden = Machine(program).run()
        plan = MultiBitPlan(FaultPlan(2, 0.0, 0.3),
                            FaultPlan(golden.fault_sites + 5, 0.0, 0.6))
        outcome = inject_multibit_fault(program, plan, golden)
        assert isinstance(outcome, Outcome)


class TestCampaigns:
    def test_spatial_campaign(self, build):
        result = run_multibit_campaign(build["raw"].asm, samples=20, seed=1,
                                       mode="spatial")
        assert result.outcomes.total == 20

    def test_temporal_campaign(self, build):
        result = run_multibit_campaign(build["raw"].asm, samples=20, seed=1,
                                       mode="temporal")
        assert result.outcomes.total == 20

    def test_unknown_mode_rejected(self, build):
        with pytest.raises(InjectionError):
            run_multibit_campaign(build["raw"].asm, samples=1, mode="both")

    def test_ferrum_still_strong_under_double_faults(self, build):
        """Duplication is only *provably* complete for single faults, but
        double faults must still be overwhelmingly caught or masked."""
        result = run_multibit_campaign(build["ferrum"].asm, samples=60,
                                       seed=3, mode="spatial")
        assert result.outcomes[Outcome.DETECTED] > 0
        assert result.outcomes.rate(Outcome.SDC) <= 0.05

    def test_reproducible(self, build):
        a = run_multibit_campaign(build["raw"].asm, samples=15, seed=9)
        b = run_multibit_campaign(build["raw"].asm, samples=15, seed=9)
        assert a.outcomes.counts == b.outcomes.counts
