"""DME as a first-class campaign technique: parity, coverage, service.

The detector rides the whole fault-injection stack with zero
special-casing — ``build_variants`` produces it, ``Machine`` dispatches
to the lockstep runner, and every execution strategy (replay/checkpoint
engines, pruning, composition, parallel workers, the durable service)
must deliver bit-identical counts and telemetry records. The gated
coverage test pins the headline claim: on backend-inserted fault sites
(non-programmer-visible work that IR-level duplication cannot even see)
DME's coverage is at least FERRUM's, with zero SDCs and zero false
detections on fault-free runs.
"""

import json

import pytest

from repro.backend.isel import LoweringKnobs, compile_module
from repro.core.ferrum import protect_program
from repro.faultinjection import compose_campaign, run_campaign
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.service import (
    CampaignSpec,
    ServiceConfig,
    resume_campaign,
    serve_campaign,
)
from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import DmeDivergenceOracle, Subject
from repro.minic import compile_to_ir
from repro.pipeline import build_variants
from repro.workloads import get_workload
from tests.faultinjection.parity import (
    assert_campaigns_identical,
    assert_jsonl_identical,
    assert_origin_maps_identical,
)

pytestmark = pytest.mark.dme

WORKLOADS = ("kmeans", "knn")
SAMPLES = 25
SEED = 21


@pytest.fixture(scope="module")
def built():
    return {
        name: build_variants(get_workload(name).source(1),
                             names=("raw", "dme"))["dme"].asm
        for name in WORKLOADS
    }


@pytest.fixture(scope="module")
def flat(built):
    return {
        name: run_campaign(program, samples=SAMPLES, seed=SEED,
                           telemetry=True)
        for name, program in built.items()
    }


class TestVariantIdentity:
    def test_pipeline_builds_dme(self, built):
        from repro.core.dme import DmeProgram

        for program in built.values():
            assert isinstance(program, DmeProgram)
            assert program.detector == "dme"

    def test_fault_plans_match_raw_sampling(self, built):
        """The primary *is* the raw backend output, so site populations and
        sampled plans agree with a raw campaign plan-for-plan."""
        build = build_variants(get_workload("kmeans").source(1),
                               names=("raw", "dme"))
        raw = run_campaign(build["raw"].asm, samples=10, seed=3,
                           telemetry=True)
        dme = run_campaign(build["dme"].asm, samples=10, seed=3,
                           telemetry=True)
        assert dme.fault_sites == raw.fault_sites
        for dme_rec, raw_rec in zip(dme.records, raw.records):
            assert dme_rec.site_index == raw_rec.site_index
            assert dme_rec.register == raw_rec.register
            assert dme_rec.bit == raw_rec.bit


class TestEngineParity:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_matches_checkpoint(self, built, flat, name):
        replay = run_campaign(built[name], samples=SAMPLES, seed=SEED,
                              engine="replay", telemetry=True)
        assert_campaigns_identical(replay, flat[name], context=name)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_pruned_matches_flat(self, built, flat, name):
        pruned = run_campaign(built[name], samples=SAMPLES, seed=SEED,
                              telemetry=True, prune=True)
        assert_campaigns_identical(pruned, flat[name], context=name)
        assert pruned.pruning_stats is not None

    def test_parallel_matches_sequential(self, built, flat):
        parallel = run_campaign(built["kmeans"], samples=SAMPLES, seed=SEED,
                                telemetry=True, processes=2)
        assert_campaigns_identical(parallel, flat["kmeans"])

    def test_machine_engines_agree(self, built, flat, monkeypatch):
        for machine_engine in ("reference", "translated"):
            monkeypatch.setenv("FERRUM_ENGINE", machine_engine)
            campaign = run_campaign(built["kmeans"], samples=SAMPLES,
                                    seed=SEED, telemetry=True)
            assert_campaigns_identical(campaign, flat["kmeans"],
                                       context=machine_engine)
        monkeypatch.delenv("FERRUM_ENGINE")

    def test_origin_maps_tag_backend_sites(self, built, flat):
        pruned = run_campaign(built["kmeans"], samples=SAMPLES, seed=SEED,
                              telemetry=True, prune=True)
        assert_origin_maps_identical(pruned.records, flat["kmeans"].records)


class TestComposeParity:
    def test_composed_matches_flat_and_caches(self, built, flat, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = compose_campaign(built["kmeans"], samples=SAMPLES, seed=SEED,
                                telemetry=True, cache_dir=cache_dir)
        assert_campaigns_identical(cold, flat["kmeans"], context="cold")
        warm = compose_campaign(built["kmeans"], samples=SAMPLES, seed=SEED,
                                telemetry=True, cache_dir=cache_dir)
        assert_campaigns_identical(warm, flat["kmeans"], context="warm")
        assert warm.compose_stats.executed_injections == 0

    def test_cache_never_leaks_across_detectors(self, built, tmp_path):
        """Identical primary code under raw vs dme has different outcomes;
        the section cache must keep the two apart (the ``detector:`` digest
        line)."""
        cache_dir = tmp_path / "cache"
        build = build_variants(get_workload("kmeans").source(1),
                               names=("raw", "dme"))
        compose_campaign(build["dme"].asm, samples=15, seed=3,
                         telemetry=True, cache_dir=cache_dir)
        raw_composed = compose_campaign(build["raw"].asm, samples=15, seed=3,
                                        telemetry=True, cache_dir=cache_dir)
        assert raw_composed.compose_stats.cache_hits == 0
        raw_flat = run_campaign(build["raw"].asm, samples=15, seed=3,
                                telemetry=True)
        assert_campaigns_identical(raw_composed, raw_flat)


class TestDurableService:
    SPEC = CampaignSpec(workloads=("kmeans",), techniques=("dme",),
                        samples=18, seed=7, shard_size=6)

    def _config(self, **overrides):
        base = dict(workers=0, fsync=False,
                    backoff_base=0.01, backoff_cap=0.05)
        base.update(overrides)
        return ServiceConfig(**base)

    def test_serve_resume_and_worker_parity(self, tmp_path):
        baseline = serve_campaign(tmp_path / "a", self.SPEC, self._config())
        assert baseline.complete
        assert "kmeans-dme" in baseline.results

        forked = serve_campaign(tmp_path / "b", self.SPEC,
                                self._config(workers=2))
        assert forked.complete
        assert_jsonl_identical(forked.results["kmeans-dme"],
                               baseline.results["kmeans-dme"])

        again = resume_campaign(tmp_path / "a", self._config())
        assert again.complete and again.executed_shards == 0
        assert_jsonl_identical(again.results["kmeans-dme"],
                               baseline.results["kmeans-dme"])

    def test_killed_shards_resume_bit_identical(self, tmp_path):
        """Shard failures (the supervisor's kill-anywhere path) must not
        perturb a single output byte."""
        clean = serve_campaign(tmp_path / "clean", self.SPEC, self._config())
        chaotic = serve_campaign(
            tmp_path / "chaos", self.SPEC,
            self._config(fail_shards={"u00-s0000": 2}, max_failures=4))
        assert chaotic.complete
        assert_jsonl_identical(chaotic.results["kmeans-dme"],
                               clean.results["kmeans-dme"])

    def test_service_matches_flat_campaign(self, built, tmp_path):
        report = serve_campaign(tmp_path / "state", self.SPEC, self._config())
        flat = run_campaign(built["kmeans"], samples=self.SPEC.samples,
                            seed=self.SPEC.seed, telemetry=True)
        with open(report.results["kmeans-dme"], encoding="utf-8") as handle:
            served = [json.loads(line) for line in handle]
        assert [r["site_index"] for r in served] \
            == [r.site_index for r in flat.records]
        assert [r["outcome"] for r in served] \
            == [r.outcome.value for r in flat.records]


class TestCoverageGate:
    """The acceptance gate: DME coverage on backend-inserted sites is at
    least FERRUM's, on two workloads, with zero SDCs — and zero false
    detections over a fuzz-corpus sweep of fault-free runs."""

    SAMPLES = 80

    def _backend_outcomes(self, program):
        campaign = run_campaign(program, samples=self.SAMPLES, seed=11,
                                telemetry=True, prune=True)
        backend = [r for r in campaign.records if r.origin == "backend"]
        sdc_total = sum(1 for r in campaign.records
                        if r.outcome is Outcome.SDC)
        return backend, sdc_total

    @staticmethod
    def _coverage(records):
        detected = sum(1 for r in records if r.outcome is Outcome.DETECTED)
        sdc = sum(1 for r in records if r.outcome is Outcome.SDC)
        return 1.0 if detected + sdc == 0 else detected / (detected + sdc)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_dme_covers_backend_sites_at_least_as_well_as_ferrum(
            self, built, name):
        module = compile_to_ir(get_workload(name).source(1))
        # FERRUM over a backend-tagged lowering, so its records can be
        # filtered to backend-origin sites just like DME's.
        tagged = compile_module(module, LoweringKnobs(tag_backend=True))
        ferrum_program, _ = protect_program(tagged)

        ferrum_backend, ferrum_sdc = self._backend_outcomes(ferrum_program)
        dme_backend, dme_sdc = self._backend_outcomes(built[name])

        assert dme_backend, f"{name}: no backend-origin sites sampled"
        assert dme_sdc == 0, f"{name}: DME let an SDC through"
        assert self._coverage(dme_backend) >= self._coverage(ferrum_backend)
        assert sum(1 for r in dme_backend
                   if r.outcome is Outcome.DETECTED) > 0

    def test_detection_latencies_are_recorded(self, built, flat):
        detected = [r for r in flat["kmeans"].records
                    if r.outcome is Outcome.DETECTED]
        assert detected
        for record in detected:
            assert record.detection_latency is not None
            assert record.detection_latency >= 0

    def test_zero_false_detections_on_fuzz_corpus(self):
        oracle = DmeDivergenceOracle()
        for seed in range(12):
            subject = Subject(generate_program(seed))
            verdict = oracle.check(subject)
            assert verdict.passed, f"seed {seed}: {verdict.detail}"
