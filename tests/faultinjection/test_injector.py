"""Single-fault injector tests."""

import pytest

from repro.faultinjection.injector import (
    FaultPlan,
    inject_asm_fault,
    inject_ir_fault,
    profile_fault_sites,
)
from repro.faultinjection.outcome import Outcome
from repro.errors import InjectionError
from repro.minic import compile_to_ir
from repro.backend import compile_module
from repro.ir.interp import IRInterpreter
from repro.utils.rng import DeterministicRng

SOURCE = """
int main() {
    int x = 21;
    print_int(x * 2);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_module(compile_to_ir(SOURCE))


@pytest.fixture(scope="module")
def golden(program):
    return profile_fault_sites(program)


class TestFaultPlan:
    def test_sample_within_bounds(self):
        rng = DeterministicRng(1)
        for i in range(50):
            plan = FaultPlan.sample(rng.fork(i), 100)
            assert 0 <= plan.site_index < 100
            assert 0.0 <= plan.register_pick < 1.0
            assert 0.0 <= plan.bit_pick < 1.0

    def test_empty_population_rejected(self):
        with pytest.raises(InjectionError):
            FaultPlan.sample(DeterministicRng(1), 0)


class TestAsmInjection:
    def test_deterministic_outcome(self, program, golden):
        plan = FaultPlan(site_index=3, register_pick=0.5, bit_pick=0.5)
        a = inject_asm_fault(program, plan, golden)
        b = inject_asm_fault(program, plan, golden)
        assert a == b

    def test_high_bit_flip_of_result_is_sdc(self, program, golden):
        # Find the multiply's site: sweep sites until one yields SDC.
        outcomes = set()
        for site in range(golden.fault_sites):
            plan = FaultPlan(site_index=site, register_pick=0.0, bit_pick=0.3)
            outcomes.add(inject_asm_fault(program, plan, golden))
        assert Outcome.SDC in outcomes

    def test_unreached_site_raises(self, program, golden):
        plan = FaultPlan(site_index=golden.fault_sites + 5,
                         register_pick=0.0, bit_pick=0.0)
        with pytest.raises(InjectionError):
            inject_asm_fault(program, plan, golden)

    def test_benign_faults_exist(self, program, golden):
        outcomes = []
        for site in range(golden.fault_sites):
            plan = FaultPlan(site_index=site, register_pick=0.9, bit_pick=0.99)
            outcomes.append(inject_asm_fault(program, plan, golden))
        assert Outcome.BENIGN in outcomes

    def test_machine_reuse_matches_fresh(self, program, golden):
        from repro.machine.cpu import Machine

        machine = Machine(program)
        plan = FaultPlan(site_index=2, register_pick=0.1, bit_pick=0.2)
        reused = inject_asm_fault(program, plan, golden, machine=machine)
        fresh = inject_asm_fault(program, plan, golden)
        assert reused == fresh


class TestIrInjection:
    def test_ir_injection_outcomes(self):
        module = compile_to_ir(SOURCE)
        golden = IRInterpreter(module).run()
        outcomes = set()
        for site in range(golden.fault_sites):
            plan = FaultPlan(site_index=site, register_pick=0.0, bit_pick=0.4)
            outcomes.add(inject_ir_fault(module, plan, golden))
        assert Outcome.SDC in outcomes

    def test_ir_injection_deterministic(self):
        module = compile_to_ir(SOURCE)
        golden = IRInterpreter(module).run()
        plan = FaultPlan(site_index=1, register_pick=0.0, bit_pick=0.9)
        assert inject_ir_fault(module, plan, golden) == \
            inject_ir_fault(module, plan, golden)


class TestCrashAndTimeout:
    def test_pointer_corruption_can_crash(self):
        source = """
        int main() {
            int* p = malloc(8);
            p[0] = 5;
            print_int(p[0]);
            return 0;
        }
        """
        program = compile_module(compile_to_ir(source))
        golden = profile_fault_sites(program)
        outcomes = set()
        for site in range(golden.fault_sites):
            # Flip a high bit: pointers become wild.
            plan = FaultPlan(site_index=site, register_pick=0.0,
                             bit_pick=0.74)  # bit ~47 of a 64-bit register
            outcomes.add(inject_asm_fault(program, plan, golden))
        assert Outcome.CRASH in outcomes

    def test_loop_counter_corruption_can_timeout(self):
        source = """
        int main() {
            int total = 0;
            for (int i = 0; i < 1000; i++) { total += 1; }
            print_int(total);
            return 0;
        }
        """
        program = compile_module(compile_to_ir(source))
        golden = profile_fault_sites(program)
        outcomes = set()
        for site in range(0, golden.fault_sites, 3):
            # bit_pick ~0.97 of a 32-bit destination is bit 31: flipping the
            # sign of the loop counter makes the loop run ~2^31 iterations.
            plan = FaultPlan(site_index=site, register_pick=0.0,
                             bit_pick=0.97)
            outcomes.add(inject_asm_fault(program, plan, golden))
            if Outcome.TIMEOUT in outcomes:
                break
        assert Outcome.TIMEOUT in outcomes
