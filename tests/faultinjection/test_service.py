"""Durable campaign service tests: compile, supervise, crash, resume.

The headline contract under test: the service can be killed at any
instant (including SIGKILL, including mid-write) and a ``resume`` drives
the campaign to output bytes identical to an uninterrupted run. The
subprocess chaos test exercises exactly that; the in-process tests pin
the pieces it relies on — deterministic sharding, failure/requeue
accounting, quarantine, segment adoption, idempotent finalize.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.faultinjection.campaign import run_campaign
from repro.faultinjection.service import (
    CampaignSpec,
    ServiceConfig,
    backoff_delay,
    compile_campaign,
    resume_campaign,
    serve_campaign,
)
from repro.pipeline import build_variants
from repro.workloads import get_workload
from tests.faultinjection.parity import assert_jsonl_identical

REPO_ROOT = Path(__file__).resolve().parents[2]

SPEC = CampaignSpec(workloads=("bfs",), techniques=("ferrum",),
                    samples=18, seed=7, shard_size=7)

#: Single-shard raw campaign for cheap failure-path tests.
TINY = CampaignSpec(workloads=("bfs",), techniques=("raw",),
                    samples=6, seed=3, shard_size=6)
TINY_SHARD = "u00-s0000"


def _config(**overrides) -> ServiceConfig:
    base = dict(workers=0, fsync=False, backoff_base=0.01, backoff_cap=0.05)
    base.update(overrides)
    return ServiceConfig(**base)


def _journal_types(state_dir) -> list[str]:
    with open(Path(state_dir) / "journal.jsonl", encoding="utf-8") as handle:
        return [json.loads(line)["type"] for line in handle if line.strip()]


class TestBackoff:
    def test_doubles_then_caps(self):
        delays = [backoff_delay(n, base=0.25, cap=2.0) for n in range(1, 7)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 2.0, 2.0]

    def test_zero_failures_no_delay(self):
        assert backoff_delay(0, base=0.25, cap=2.0) == 0.0


class TestSpec:
    def test_round_trip(self):
        assert CampaignSpec.from_json(SPEC.to_json()) == SPEC

    @pytest.mark.parametrize("bad", [
        dict(workloads=()),
        dict(techniques=()),
        dict(techniques=("rose-gold",)),
        dict(samples=0),
        dict(shard_size=0),
        dict(scale=0),
    ])
    def test_validation(self, bad):
        spec = CampaignSpec(**{**dict(
            workloads=("bfs",), techniques=("raw",), samples=4, seed=1,
        ), **bad})
        with pytest.raises(Exception):
            spec.validate()


class TestCompile:
    def test_shard_boundaries_do_not_change_plans(self):
        coarse = compile_campaign(SPEC)[0]
        fine = compile_campaign(
            CampaignSpec(**{**SPEC.to_json(), "shard_size": 5}))[0]

        def plan_set(unit):
            return {(run, plan) for _, plans in unit.shards
                    for run, plan in plans}

        assert plan_set(coarse) == plan_set(fine)
        assert len(coarse.shards) == 3 and len(fine.shards) == 4

    def test_shards_are_contiguous_site_ranges(self):
        unit = compile_campaign(SPEC)[0]
        previous_hi = -1
        for descriptor, plans in unit.shards:
            sites = [plan.site_index for _, plan in plans]
            assert sites == sorted(sites)
            assert descriptor.site_lo == sites[0] >= previous_hi
            assert descriptor.site_hi == sites[-1]
            assert descriptor.plan_count == len(plans)
            previous_hi = descriptor.site_hi

    def test_plans_match_flat_campaign_sampling(self):
        # The exact plans a flat run_campaign(samples, seed) would draw.
        unit = compile_campaign(SPEC)[0]
        program = build_variants(get_workload("bfs").source(1),
                                 names=("raw", "ferrum"))["ferrum"].asm
        flat = run_campaign(program, SPEC.samples, seed=SPEC.seed,
                            telemetry=True)
        by_run = {run: plan for _, plans in unit.shards
                  for run, plan in plans}
        for record in flat.records:
            assert by_run[record.run_index].site_index == record.site_index

    def test_shard_ids_and_unit_ids(self):
        units = compile_campaign(CampaignSpec(
            workloads=("bfs",), techniques=("raw", "ferrum"),
            samples=4, seed=1, shard_size=2))
        assert [u.unit_id for u in units] == ["bfs-raw", "bfs-ferrum"]
        assert units[1].shards[0][0].shard_id == "u01-s0000"


class TestServeInProcess:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        state_dir = tmp_path_factory.mktemp("service") / "state"
        report = serve_campaign(state_dir, SPEC, _config())
        return state_dir, report

    def test_completes_with_flat_campaign_counts(self, served):
        _, report = served
        assert report.complete
        assert report.shards == report.done_shards == 3
        program = build_variants(get_workload("bfs").source(1),
                                 names=("raw", "ferrum"))["ferrum"].asm
        flat = run_campaign(program, SPEC.samples, seed=SPEC.seed)
        aggregate = report.aggregates["bfs-ferrum"]
        assert aggregate.records == SPEC.samples
        for outcome, count in flat.outcomes.counts.items():
            assert aggregate.counts[outcome] == count

    def test_results_are_run_index_ordered(self, served):
        _, report = served
        with open(report.results["bfs-ferrum"], encoding="utf-8") as handle:
            runs = [json.loads(line)["run_index"] for line in handle]
        assert runs == list(range(SPEC.samples))

    def test_record_buffer_bounded_by_shard_size(self, served):
        _, report = served
        assert 0 < report.peak_record_buffer <= SPEC.shard_size

    def test_resume_is_idempotent(self, served):
        state_dir, report = served
        before = Path(report.results["bfs-ferrum"]).read_bytes()
        summary_before = Path(report.summary_path).read_bytes()
        again = resume_campaign(state_dir, _config())
        assert again.complete and again.executed_shards == 0
        assert Path(again.results["bfs-ferrum"]).read_bytes() == before
        assert Path(again.summary_path).read_bytes() == summary_before

    def test_serve_again_with_same_spec_is_allowed(self, served):
        state_dir, _ = served
        report = serve_campaign(state_dir, SPEC, _config())
        assert report.complete and report.executed_shards == 0

    def test_serve_with_different_spec_refuses(self, served):
        state_dir, _ = served
        other = CampaignSpec(**{**SPEC.to_json(), "seed": 8})
        with pytest.raises(ServiceError, match="different campaign"):
            serve_campaign(state_dir, other, _config())

    def test_summary_is_deterministic_json(self, served):
        _, report = served
        summary = json.loads(Path(report.summary_path).read_text())
        assert summary["complete"] is True
        unit = summary["units"]["bfs-ferrum"]
        assert unit["records"] == SPEC.samples
        assert unit["shards"] == 3

    def test_forked_workers_produce_identical_bytes(self, served, tmp_path):
        _, report = served
        forked = serve_campaign(tmp_path / "state", SPEC,
                                _config(workers=2))
        assert forked.complete
        assert_jsonl_identical(forked.results["bfs-ferrum"],
                               report.results["bfs-ferrum"])
        assert (Path(forked.summary_path).read_bytes()
                == Path(report.summary_path).read_bytes())


class TestResumeEdges:
    def test_resume_empty_dir_refuses(self, tmp_path):
        with pytest.raises(ServiceError, match="no campaign"):
            resume_campaign(tmp_path / "state", _config())

    def test_leases_do_not_count_toward_quarantine(self, tmp_path):
        # A supervisor SIGKILLed mid-lease leaves lease records with no
        # outcome; replay must not treat them as failures, or chaos kills
        # would quarantine healthy shards.
        state_dir = tmp_path / "state"
        os.makedirs(state_dir)
        with open(state_dir / "journal.jsonl", "w", encoding="utf-8") as h:
            h.write(json.dumps({"type": "campaign", "version": 1,
                                "spec": TINY.to_json()},
                               sort_keys=True) + "\n")
            for attempt in range(1, 4):
                h.write(json.dumps({"type": "leased", "shard": TINY_SHARD,
                                    "attempt": attempt, "pid": 1},
                                   sort_keys=True) + "\n")
        report = resume_campaign(state_dir, _config(max_failures=2))
        assert report.complete and not report.quarantined

    def test_orphan_segments_are_adopted(self, tmp_path):
        # Worker finished (segment renamed into place) but the supervisor
        # died before journaling "done": resume must adopt, not re-run.
        baseline_dir = tmp_path / "baseline"
        serve_campaign(baseline_dir, SPEC, _config())
        orphan_dir = tmp_path / "orphan"
        os.makedirs(orphan_dir / "segments")
        with open(orphan_dir / "journal.jsonl", "w", encoding="utf-8") as h:
            h.write(json.dumps({"type": "campaign", "version": 1,
                                "spec": SPEC.to_json()},
                               sort_keys=True) + "\n")
        for name in os.listdir(baseline_dir / "segments"):
            (orphan_dir / "segments" / name).write_bytes(
                (baseline_dir / "segments" / name).read_bytes())
        report = resume_campaign(orphan_dir, _config())
        assert report.complete
        assert report.executed_shards == 0
        assert report.adopted_segments == report.shards == 3
        assert (Path(report.results["bfs-ferrum"]).read_bytes()
                == (baseline_dir / "results" / "bfs-ferrum.jsonl"
                    ).read_bytes())

    def test_invalid_orphan_segment_is_reexecuted(self, tmp_path):
        state_dir = tmp_path / "state"
        os.makedirs(state_dir / "segments")
        with open(state_dir / "journal.jsonl", "w", encoding="utf-8") as h:
            h.write(json.dumps({"type": "campaign", "version": 1,
                                "spec": TINY.to_json()},
                               sort_keys=True) + "\n")
        (state_dir / "segments" / f"{TINY_SHARD}.jsonl").write_text(
            '{"not": "a fault record"}\n{"also": "bad"}\n')
        report = resume_campaign(state_dir, _config())
        assert report.complete
        assert report.adopted_segments == 0
        assert report.executed_shards == 1


class TestFailureHandling:
    def test_transient_failures_are_requeued(self, tmp_path):
        report = serve_campaign(
            tmp_path / "state", TINY,
            _config(fail_shards={TINY_SHARD: 2}, max_failures=4))
        assert report.complete
        types = _journal_types(tmp_path / "state")
        assert types.count("failed") == 2
        assert types.count("done") == 1

    def test_worker_crash_requeues_in_process_mode(self, tmp_path):
        report = serve_campaign(
            tmp_path / "state", TINY,
            _config(workers=1, fail_shards={TINY_SHARD: 1}))
        assert report.complete
        types = _journal_types(tmp_path / "state")
        assert types.count("failed") == 1 and types.count("leased") == 2

    def test_hung_worker_is_killed_and_requeued(self, tmp_path):
        started = time.monotonic()
        report = serve_campaign(
            tmp_path / "state", TINY,
            _config(workers=1, hang_shards={TINY_SHARD: 1},
                    shard_timeout=0.4))
        assert report.complete
        assert time.monotonic() - started < 30  # killed, not waited out
        with open(tmp_path / "state" / "journal.jsonl",
                  encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        failed = [r for r in records if r["type"] == "failed"]
        assert len(failed) == 1 and "timeout" in failed[0]["reason"]

    def test_persistent_failure_quarantines(self, tmp_path):
        state_dir = tmp_path / "state"
        report = serve_campaign(
            state_dir, TINY,
            _config(fail_shards={TINY_SHARD: 99}, max_failures=2))
        assert not report.complete
        assert report.quarantined == (TINY_SHARD,)
        assert "bfs-raw" not in report.results  # unit left unmerged
        artifact = json.loads(
            (state_dir / "quarantine" / f"{TINY_SHARD}.json").read_text())
        assert artifact["failures"] == 2
        assert artifact["unit"] == "bfs-raw"
        assert len(artifact["reasons"]) == 2

    def test_quarantine_is_sticky_until_requeued(self, tmp_path):
        state_dir = tmp_path / "state"
        serve_campaign(state_dir, TINY,
                       _config(fail_shards={TINY_SHARD: 99}, max_failures=2))
        still = resume_campaign(state_dir, _config())
        assert not still.complete and still.executed_shards == 0
        # --requeue-quarantined grants a fresh set of attempts; with the
        # fault gone the campaign now completes normally.
        healed = resume_campaign(state_dir,
                                 _config(requeue_quarantined=True))
        assert healed.complete
        baseline = serve_campaign(tmp_path / "clean", TINY, _config())
        assert_jsonl_identical(healed.results["bfs-raw"],
                               baseline.results["bfs-raw"])


class TestKillAnywhereChaos:
    """SIGKILL the real CLI service mid-run; resumed bytes must match."""

    def _run_cli(self, args, kill_after=None):
        env = {**os.environ, "PYTHONPATH": "src"}
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.evaluation.cli", *args],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        if kill_after is None:
            return process.wait()
        time.sleep(kill_after)
        process.send_signal(signal.SIGKILL)
        process.wait()
        return -signal.SIGKILL

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        serve_args = ["--samples", "18", "--seed", "7", "--shard-size", "6",
                      "--workers", "2", "--workloads", "bfs",
                      "--techniques", "ferrum", "--no-fsync"]
        baseline = tmp_path / "baseline"
        assert self._run_cli(
            ["serve", "--state-dir", str(baseline), *serve_args]) == 0

        chaos = tmp_path / "chaos"
        self._run_cli(["serve", "--state-dir", str(chaos), *serve_args],
                      kill_after=0.6)
        self._run_cli(["resume", "--state-dir", str(chaos), "--workers",
                       "2", "--no-fsync"], kill_after=0.3)
        for _ in range(10):
            code = self._run_cli(["resume", "--state-dir", str(chaos),
                                  "--workers", "2", "--no-fsync"])
            if code == 0:
                break
        assert code == 0

        result = "results/bfs-ferrum.jsonl"
        assert_jsonl_identical(chaos / result, baseline / result)
        assert ((chaos / "summary.json").read_bytes()
                == (baseline / "summary.json").read_bytes())
