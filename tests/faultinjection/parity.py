"""Shared campaign-parity assertions.

Every execution strategy in the fault-injection stack (replay vs
checkpoint engines, pruning, composition, the durable service, parallel
workers, DME lockstep) carries the same headline contract: for a fixed
seed it must be *bit-identical* to the plain flat campaign. The suites
that pin this contract all need the same comparisons — aggregate counts,
fault-site population, telemetry records field-for-field, per-origin
maps, JSONL bytes. Keeping them here means a new execution strategy
(like the DME detector) states its parity obligations in one line per
axis instead of re-deriving the assertion set.
"""

from __future__ import annotations

from pathlib import Path

from repro.faultinjection.telemetry import outcomes_by_origin


def assert_counts_identical(actual, reference, context=""):
    """Aggregate outcome counts and population size must match."""
    note = f" [{context}]" if context else ""
    assert actual.outcomes.counts == reference.outcomes.counts, (
        f"outcome counts diverge{note}: "
        f"{actual.outcomes.counts} != {reference.outcomes.counts}")
    assert actual.fault_sites == reference.fault_sites, (
        f"fault-site population diverges{note}")
    assert actual.samples == reference.samples, (
        f"sample count diverges{note}")


def assert_campaigns_identical(actual, reference, context=""):
    """Full bit-identity: counts, population, and telemetry records.

    Records are compared field-for-field in run-index order; both
    campaigns must have been run with ``telemetry=True``.
    """
    assert_counts_identical(actual, reference, context=context)
    note = f" [{context}]" if context else ""
    assert actual.records is not None and reference.records is not None, (
        f"parity check needs telemetry records on both sides{note}")
    assert actual.records == reference.records, (
        f"telemetry records diverge{note}")


def assert_origin_maps_identical(actual_records, reference_records,
                                 context=""):
    """Per-origin outcome maps must agree origin-by-origin."""
    note = f" [{context}]" if context else ""
    by_actual = outcomes_by_origin(actual_records)
    by_reference = outcomes_by_origin(reference_records)
    assert by_actual.keys() == by_reference.keys(), (
        f"origin sets diverge{note}: "
        f"{sorted(by_actual)} != {sorted(by_reference)}")
    for origin, counts in by_reference.items():
        assert by_actual[origin].counts == counts.counts, (
            f"origin {origin!r} counts diverge{note}")


def assert_jsonl_identical(actual_path, reference_path, ordered=True):
    """Two JSONL sinks must contain the same records.

    ``ordered=True`` demands byte identity; ``ordered=False`` compares
    the sorted line sets (for engines that stream in site order rather
    than run-index order).
    """
    actual_bytes = Path(actual_path).read_bytes()
    reference_bytes = Path(reference_path).read_bytes()
    if ordered:
        assert actual_bytes == reference_bytes, (
            f"JSONL bytes diverge: {actual_path} != {reference_path}")
        return
    actual_lines = sorted(actual_bytes.decode("utf-8").splitlines())
    reference_lines = sorted(reference_bytes.decode("utf-8").splitlines())
    assert actual_lines == reference_lines, (
        f"JSONL record sets diverge: {actual_path} != {reference_path}")
