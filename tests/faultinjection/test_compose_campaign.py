"""Compositional campaigns: flat-equivalent by construction, cached by content.

``compose_campaign`` partitions the dynamic fault-site population into
function/loop-nest sections, runs per-section sub-campaigns off shared
prefix snapshots, and composes the results. For any fixed seed the
composed campaign must be bit-identical to the flat ``run_campaign`` —
counts, per-origin maps, telemetry records and JSONL bytes — across
campaign engines, machine engines, ``prune`` and ``processes``. The
on-disk section cache must serve warm reruns without executing a single
injection and invalidate exactly the sections whose code changed.
"""

import json
import os

import pytest

from repro.errors import InjectionError
from repro.faultinjection.campaign import run_campaign, run_ir_campaign
from repro.faultinjection.compose import (
    SectionCache,
    _ProgramIndex,
    compose_campaign,
    trace_sections,
)
from repro.faultinjection.telemetry import read_jsonl
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir
from repro.pipeline import build_variants
from repro.workloads import get_workload
from tests.faultinjection.parity import (
    assert_campaigns_identical,
    assert_jsonl_identical,
    assert_origin_maps_identical,
)

#: Four workloads (the acceptance bar) mixing single-function programs
#: (bfs: sections come from loop nests) and helper-calling ones (knn,
#: pathfinder, needle: helper sites interleave with main's).
WORKLOADS = ("bfs", "knn", "pathfinder", "needle")
SAMPLES = 20
SEED = 21


@pytest.fixture(scope="module")
def built():
    return {
        name: build_variants(get_workload(name).source(1),
                             names=("ferrum",))["ferrum"].asm
        for name in WORKLOADS
    }


@pytest.fixture(scope="module")
def flat(built):
    """One flat telemetry campaign per workload — the reference results."""
    return {
        name: run_campaign(program, samples=SAMPLES, seed=SEED,
                           telemetry=True)
        for name, program in built.items()
    }


class TestComposedBitIdentity:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_counts_and_records_identical(self, built, flat, name):
        composed = run_composed(built[name])
        assert_campaigns_identical(composed, flat[name], context=name)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_per_origin_maps_identical(self, built, flat, name):
        composed = run_composed(built[name])
        assert_origin_maps_identical(composed.records, flat[name].records,
                                     context=name)

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("machine_engine",
                             ("translated", "fused", "reference"))
    def test_machine_engines_identical(self, built, flat, name,
                                       machine_engine, monkeypatch):
        monkeypatch.setenv("FERRUM_ENGINE", machine_engine)
        composed = run_composed(built[name])
        assert_campaigns_identical(composed, flat[name],
                                   context=f"{name}/{machine_engine}")

    @pytest.mark.parametrize("engine", ("checkpoint", "replay"))
    def test_campaign_engines_identical(self, built, flat, engine):
        composed = run_composed(built["knn"], engine=engine)
        assert_campaigns_identical(composed, flat["knn"], context=engine)

    @pytest.mark.parametrize("name", ("knn", "pathfinder"))
    def test_prune_identical(self, built, flat, name):
        composed = run_composed(built[name], prune=True)
        assert_campaigns_identical(composed, flat[name], context=name)
        assert composed.pruning_stats is not None

    @pytest.mark.parametrize("kwargs", (
        dict(processes=3),
        dict(processes=3, prune=True),
        dict(processes=3, engine="replay"),
    ))
    def test_parallel_identical(self, built, flat, kwargs):
        composed = run_composed(built["knn"], **kwargs)
        assert_campaigns_identical(composed, flat["knn"])

    def test_jsonl_byte_identical(self, built, tmp_path):
        flat_path = tmp_path / "flat.jsonl"
        composed_path = tmp_path / "composed.jsonl"
        run_campaign(built["knn"], samples=SAMPLES, seed=SEED,
                     jsonl_path=flat_path)
        run_composed(built["knn"], telemetry=False,
                     jsonl_path=composed_path)
        assert_jsonl_identical(composed_path, flat_path)

    def test_pruned_jsonl_byte_identical(self, built, tmp_path):
        flat_path = tmp_path / "flat.jsonl"
        composed_path = tmp_path / "composed.jsonl"
        run_campaign(built["knn"], samples=SAMPLES, seed=SEED,
                     jsonl_path=flat_path, prune=True)
        run_composed(built["knn"], telemetry=False,
                     jsonl_path=composed_path, prune=True)
        assert_jsonl_identical(composed_path, flat_path)


def run_composed(program, telemetry=True, **kwargs):
    return compose_campaign(program, samples=SAMPLES, seed=SEED,
                            telemetry=telemetry, **kwargs)


class TestSectionPartition:
    def test_sections_partition_the_population(self, built):
        program = built["knn"]
        golden, sections = trace_sections(program)
        assert sections[0].start_site == 0
        assert sections[-1].end_site == golden.fault_sites
        for left, right in zip(sections, sections[1:]):
            assert left.end_site == right.start_site
            assert left.region != right.region  # maximal runs
        names = set(program.function_names())
        assert all(section.function in names for section in sections)

    def test_helper_sites_interleave(self, built):
        _, sections = trace_sections(built["knn"])
        assert sum(s.function == "sq_dist" for s in sections) > 1

    def test_loop_nests_form_regions(self, built):
        _, sections = trace_sections(built["bfs"])
        assert any("@" in section.region for section in sections)

    def test_golden_run_matches_plain_run(self, built):
        program = built["pathfinder"]
        golden, _ = trace_sections(program)
        plain = Machine(program).run()
        assert golden.output == plain.output
        assert golden.exit_code == plain.exit_code
        assert golden.fault_sites == plain.fault_sites
        assert golden.dynamic_instructions == plain.dynamic_instructions


class TestSectionCache:
    def test_warm_rerun_is_identical_and_free(self, built, flat, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_composed(built["knn"], cache_dir=cache_dir)
        warm = run_composed(built["knn"], cache_dir=cache_dir)
        assert_campaigns_identical(cold, flat["knn"], context="cold")
        assert_campaigns_identical(warm, flat["knn"], context="warm")
        assert cold.compose_stats.cache_hits == 0
        assert warm.compose_stats.cache_misses == 0
        assert warm.compose_stats.executed_injections == 0
        assert (warm.compose_stats.cached_injections
                == cold.compose_stats.executed_injections)

    def test_fresh_uids_still_hit(self, built, tmp_path):
        """Keys address content, not object identity: a deep copy of the
        program (new instruction uids) must be served fully from cache."""
        cache_dir = tmp_path / "cache"
        run_composed(built["pathfinder"], cache_dir=cache_dir)
        warm = run_composed(built["pathfinder"].copy(), cache_dir=cache_dir)
        assert warm.compose_stats.executed_injections == 0

    def test_refresh_reexecutes_named_function_only(self, built, flat,
                                                    tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_composed(built["knn"], cache_dir=cache_dir)
        refreshed = run_composed(built["knn"], cache_dir=cache_dir,
                                 refresh=("sq_dist",))
        assert_campaigns_identical(refreshed, flat["knn"])
        stats = refreshed.compose_stats
        assert stats.refreshed_sections > 0
        assert stats.cache_misses == stats.refreshed_sections
        assert stats.executed_injections < cold.compose_stats.executed_injections

    def test_refresh_unknown_function_raises(self, built, tmp_path):
        with pytest.raises(InjectionError, match="unknown function"):
            run_composed(built["knn"], cache_dir=tmp_path / "cache",
                         refresh=("nonesuch",))

    def test_editing_one_function_invalidates_only_its_sections(
        self, built, tmp_path
    ):
        """A content edit to one function misses exactly that function's
        sections; everything else hits, and the composed result equals a
        flat campaign on the edited program."""
        cache_dir = tmp_path / "cache"
        program = built["knn"]
        cold = run_composed(program, cache_dir=cache_dir)

        edited = program.copy()
        target = edited.function("sq_dist")
        # A comment is part of the printed code bytes (and so of the
        # section content hash) but not of behavior: the dynamic trace,
        # plan routing and outcomes are unchanged — the pure cache-key
        # experiment.
        target.entry.instructions[0].comment = "edited"
        after = run_composed(edited, cache_dir=cache_dir)
        flat_edited = run_campaign(edited, samples=SAMPLES, seed=SEED,
                                   telemetry=True)
        assert_campaigns_identical(after, flat_edited)

        stats = after.compose_stats
        cold_stats = cold.compose_stats
        assert 0 < stats.cache_misses < cold_stats.cache_misses
        assert stats.cache_hits == (cold_stats.populated_sections
                                    - stats.cache_misses)
        # The misses are exactly the plan-holding sections whose region
        # content digest the edit changed: sq_dist's own sections plus
        # sections of regions that can call into sq_dist (their behavior
        # includes the edited code). Regions that cannot reach sq_dist
        # must all hit.
        before_index = _ProgramIndex(program)
        after_index = _ProgramIndex(edited)
        _, edited_sections = trace_sections(edited)
        sampled_sites = [record.site_index for record in after.records]
        invalidated = populated = 0
        for section in edited_sections:
            if not any(section.start_site <= site < section.end_site
                       for site in sampled_sites):
                continue
            populated += 1
            if (after_index.region_digest(section.region)
                    != before_index.region_digest(section.region)):
                invalidated += 1
        assert populated == cold_stats.populated_sections
        assert stats.cache_misses == invalidated
        assert any(section.function == "sq_dist"
                   for section in edited_sections)

    def test_cache_grows_new_entries_for_edit(self, built, tmp_path):
        cache_dir = tmp_path / "cache"
        run_composed(built["knn"], cache_dir=cache_dir)
        before = SectionCache(cache_dir).keys()
        edited = built["knn"].copy()
        edited.function("sq_dist").entry.instructions[0].comment = "edited"
        run_composed(edited, cache_dir=cache_dir)
        after = SectionCache(cache_dir).keys()
        assert before < after  # old entries intact, new ones added

    def test_corrupt_entry_is_a_miss(self, built, tmp_path):
        cache_dir = tmp_path / "cache"
        run_composed(built["pathfinder"], cache_dir=cache_dir)
        for name in os.listdir(cache_dir):
            with open(cache_dir / name, "w", encoding="utf-8") as handle:
                handle.write("{not json")
        warm = run_composed(built["pathfinder"], cache_dir=cache_dir)
        assert warm.compose_stats.cache_hits == 0
        assert warm.compose_stats.executed_injections > 0


class TestCampaignParityFixes:
    """The satellite fixes: jsonl_mode threading and IR prune parity."""

    def test_jsonl_append_mode_accumulates(self, built, tmp_path):
        path = tmp_path / "campaign.jsonl"
        solo = tmp_path / "second.jsonl"
        run_campaign(built["knn"], samples=5, seed=1, jsonl_path=path)
        first_bytes = path.read_bytes()
        run_campaign(built["knn"], samples=5, seed=2, jsonl_path=path,
                     jsonl_mode="a")
        run_campaign(built["knn"], samples=5, seed=2, jsonl_path=solo)
        assert path.read_bytes() == first_bytes + solo.read_bytes()

    def test_jsonl_default_mode_truncates(self, built, tmp_path):
        path = tmp_path / "campaign.jsonl"
        solo = tmp_path / "second.jsonl"
        run_campaign(built["knn"], samples=5, seed=1, jsonl_path=path)
        run_campaign(built["knn"], samples=5, seed=2, jsonl_path=path)
        run_campaign(built["knn"], samples=5, seed=2, jsonl_path=solo)
        assert path.read_bytes() == solo.read_bytes()

    def test_invalid_jsonl_mode_raises(self, built, tmp_path):
        with pytest.raises(InjectionError, match="jsonl_mode"):
            run_campaign(built["knn"], samples=2, seed=1,
                         jsonl_path=tmp_path / "x.jsonl", jsonl_mode="x")

    def test_ir_campaign_jsonl_append(self, tmp_path):
        module = compile_to_ir(get_workload("pathfinder").source(1))
        path = tmp_path / "ir.jsonl"
        run_ir_campaign(module, samples=3, seed=1, jsonl_path=path)
        run_ir_campaign(module, samples=3, seed=2, jsonl_path=path,
                        jsonl_mode="a")
        assert len(read_jsonl(path)) == 6

    def test_ir_prune_raises_descriptive_error(self):
        module = compile_to_ir(get_workload("pathfinder").source(1))
        with pytest.raises(InjectionError,
                           match="assembly-level only"):
            run_ir_campaign(module, samples=2, seed=1, prune=True)

    def test_compose_jsonl_append_mode(self, built, tmp_path):
        path = tmp_path / "composed.jsonl"
        run_composed(built["knn"], telemetry=False, jsonl_path=path)
        run_composed(built["knn"], telemetry=False, jsonl_path=path,
                     jsonl_mode="a")
        assert len(read_jsonl(path)) == 2 * SAMPLES
