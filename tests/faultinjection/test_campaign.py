"""Campaign tests."""

import pytest

from repro.backend import compile_module
from repro.faultinjection.campaign import run_campaign, run_ir_campaign
from repro.faultinjection.outcome import Outcome
from repro.minic import compile_to_ir

SOURCE = """
int main() {
    int acc = 0;
    for (int i = 0; i < 12; i++) { acc += i * i; }
    print_int(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_module(compile_to_ir(SOURCE))


class TestAsmCampaign:
    def test_sample_count_respected(self, program):
        result = run_campaign(program, samples=25, seed=3)
        assert result.outcomes.total == 25
        assert result.samples == 25

    def test_seed_reproducibility(self, program):
        a = run_campaign(program, samples=25, seed=3)
        b = run_campaign(program, samples=25, seed=3)
        assert a.outcomes.counts == b.outcomes.counts

    def test_different_seeds_generally_differ(self, program):
        a = run_campaign(program, samples=40, seed=1)
        b = run_campaign(program, samples=40, seed=2)
        # Outcome mixes can coincide, but at these sizes it is unlikely.
        assert a.outcomes.counts != b.outcomes.counts

    def test_unprotected_program_shows_sdcs(self, program):
        result = run_campaign(program, samples=60, seed=5)
        assert result.outcomes[Outcome.SDC] > 0
        assert result.outcomes[Outcome.DETECTED] == 0

    def test_prefix_stability(self, program):
        """Adding samples must not change earlier draws (forked streams)."""
        small = run_campaign(program, samples=10, seed=9)
        large = run_campaign(program, samples=20, seed=9)
        assert small.outcomes.total == 10
        # The first 10 plans are identical, so large's counts dominate
        # small's counts in every outcome.
        for outcome in Outcome:
            assert large.outcomes[outcome] >= small.outcomes[outcome]

    def test_summary_text(self, program):
        result = run_campaign(program, samples=5, seed=1)
        assert "5 faults" in result.summary()


class TestIrCampaign:
    def test_ir_campaign_runs(self):
        module = compile_to_ir(SOURCE)
        result = run_ir_campaign(module, samples=25, seed=3)
        assert result.outcomes.total == 25
        assert result.fault_sites > 0

    def test_ir_campaign_deterministic(self):
        module = compile_to_ir(SOURCE)
        a = run_ir_campaign(module, samples=15, seed=4)
        b = run_ir_campaign(module, samples=15, seed=4)
        assert a.outcomes.counts == b.outcomes.counts


def _even_doubler(n):
    """Module-level pool worker (fork-picklable): fails on odd input."""
    if n % 2:
        raise RuntimeError(f"odd input {n}")
    return n * 2


class TestPooledFailure:
    def test_partial_progress_reported_and_state_cleared(self):
        from repro.errors import InjectionError
        from repro.faultinjection.campaign import (
            _PARALLEL_STATE,
            _fork_context,
            _pooled,
        )

        context = _fork_context()
        if context is None:
            pytest.skip("fork start method unavailable")
        _PARALLEL_STATE["sentinel"] = object()
        with pytest.raises(InjectionError) as info:
            _pooled(context, 2, _even_doubler, [0, 2, 4, 5, 6], chunksize=1)
        # The error names how far the campaign got, carries the completed
        # prefix, and chains the worker's original exception.
        assert "3/5 tasks completed" in str(info.value)
        assert info.value.partial_results == [0, 4, 8]
        assert isinstance(info.value.__cause__, RuntimeError)
        assert _PARALLEL_STATE == {}  # cleaned up despite the failure

    def test_success_path_still_clears_state(self, program):
        from repro.faultinjection.campaign import (
            _PARALLEL_STATE,
            _fork_context,
            _pooled,
        )

        context = _fork_context()
        if context is None:
            pytest.skip("fork start method unavailable")
        _PARALLEL_STATE["sentinel"] = 1
        assert _pooled(context, 2, _even_doubler, [0, 2], chunksize=1) \
            == [0, 4]
        assert _PARALLEL_STATE == {}
