"""Outcome taxonomy and metric tests."""

import pytest

from repro.faultinjection.outcome import Outcome, OutcomeCounts, sdc_coverage


class TestOutcomeCounts:
    def test_starts_empty(self):
        counts = OutcomeCounts()
        assert counts.total == 0
        assert counts.sdc_probability == 0.0

    def test_record_and_rate(self):
        counts = OutcomeCounts()
        for _ in range(3):
            counts.record(Outcome.SDC)
        counts.record(Outcome.BENIGN)
        assert counts.total == 4
        assert counts.rate(Outcome.SDC) == 0.75
        assert counts[Outcome.BENIGN] == 1

    def test_all_outcomes_tracked(self):
        counts = OutcomeCounts()
        for outcome in Outcome:
            counts.record(outcome)
        assert counts.total == len(Outcome)


class TestSdcCoverage:
    def test_full_coverage(self):
        assert sdc_coverage(0.5, 0.0) == 1.0

    def test_no_coverage(self):
        assert sdc_coverage(0.5, 0.5) == 0.0

    def test_half_coverage(self):
        assert sdc_coverage(0.4, 0.2) == pytest.approx(0.5)

    def test_zero_raw_is_vacuously_full(self):
        assert sdc_coverage(0.0, 0.0) == 1.0

    def test_negative_coverage_possible(self):
        # A "protection" that adds SDCs shows as negative coverage.
        assert sdc_coverage(0.1, 0.2) < 0
