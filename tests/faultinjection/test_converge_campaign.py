"""Convergence early-exit: bit-identity matrix and stats contract.

``converge=True`` is pure execution strategy — for any fixed seed the
outcome counts, FaultRecords, per-origin maps and JSONL bytes must be
bit-identical to ``converge=False``, across machine engines (reference /
translated / fused), campaign engines (checkpoint / replay), process
counts, static pruning, composition, the durable service, and detector
variants (ferrum / hybrid / dme) on >= 3 workloads.
"""

import json

import pytest

from repro.errors import InjectionError
from repro.faultinjection.campaign import run_campaign, run_ir_campaign
from repro.faultinjection.compose import compose_campaign
from repro.minic import compile_to_ir
from repro.pipeline import build_variants
from repro.workloads import get_workload
from tests.faultinjection.parity import (
    assert_campaigns_identical,
    assert_jsonl_identical,
    assert_origin_maps_identical,
)

WORKLOADS = ("bfs", "knn", "pathfinder")
TECHNIQUES = ("ferrum", "hybrid", "dme")
SAMPLES = 12
SEED = 21


@pytest.fixture(scope="module")
def built():
    out = {}
    for name in WORKLOADS:
        build = build_variants(get_workload(name).source(1),
                               names=("raw",) + TECHNIQUES)
        out[name] = {tech: build[tech].asm for tech in TECHNIQUES}
    return out


def _pair(program, tmp_path, tag, **kwargs):
    """One campaign with converge off and one with it on, JSONL streamed."""
    off_path = tmp_path / f"{tag}-off.jsonl"
    on_path = tmp_path / f"{tag}-on.jsonl"
    off = run_campaign(program, samples=SAMPLES, seed=SEED, telemetry=True,
                       jsonl_path=off_path, **kwargs)
    on = run_campaign(program, samples=SAMPLES, seed=SEED, telemetry=True,
                      jsonl_path=on_path, converge=True, **kwargs)
    return off, on, off_path, on_path


class TestBitIdentity:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_technique_matrix(self, built, tmp_path, name, technique):
        program = built[name][technique]
        off, on, off_path, on_path = _pair(program, tmp_path,
                                           f"{name}-{technique}")
        assert_campaigns_identical(on, off, context=f"{name}/{technique}")
        assert_origin_maps_identical(on.records, off.records,
                                     context=f"{name}/{technique}")
        assert_jsonl_identical(on_path, off_path)
        assert on.convergence_stats is not None
        assert on.convergence_stats.runs == SAMPLES
        assert off.convergence_stats is None

    @pytest.mark.parametrize("engine", ("checkpoint", "replay"))
    def test_campaign_engines(self, built, tmp_path, engine):
        program = built["bfs"]["ferrum"]
        off, on, off_path, on_path = _pair(program, tmp_path, engine,
                                           engine=engine)
        assert_campaigns_identical(on, off, context=engine)
        assert_jsonl_identical(on_path, off_path)

    @pytest.mark.parametrize("machine_engine",
                             ("reference", "translated", "fused"))
    def test_machine_engines(self, built, tmp_path, monkeypatch,
                             machine_engine):
        monkeypatch.setenv("FERRUM_ENGINE", machine_engine)
        program = built["knn"]["ferrum"]
        off, on, off_path, on_path = _pair(program, tmp_path, machine_engine)
        assert_campaigns_identical(on, off, context=machine_engine)
        assert_jsonl_identical(on_path, off_path)

    def test_parallel_matches_sequential(self, built, tmp_path):
        program = built["bfs"]["ferrum"]
        sequential = run_campaign(program, samples=SAMPLES, seed=SEED,
                                  telemetry=True, converge=True)
        for engine in ("checkpoint", "replay"):
            parallel = run_campaign(program, samples=SAMPLES, seed=SEED,
                                    telemetry=True, converge=True,
                                    processes=2, engine=engine)
            assert_campaigns_identical(parallel, sequential, context=engine)
            # Stats are order-independent sums: parallel == sequential.
            assert (parallel.convergence_stats.summary()
                    == sequential.convergence_stats.summary())

    def test_prune_composes_with_converge(self, built, tmp_path):
        program = built["pathfinder"]["ferrum"]
        off_path = tmp_path / "prune-off.jsonl"
        on_path = tmp_path / "prune-on.jsonl"
        off = run_campaign(program, samples=SAMPLES, seed=SEED,
                           telemetry=True, prune=True, jsonl_path=off_path)
        on = run_campaign(program, samples=SAMPLES, seed=SEED,
                          telemetry=True, prune=True, converge=True,
                          jsonl_path=on_path)
        assert_campaigns_identical(on, off, context="prune+converge")
        assert_jsonl_identical(on_path, off_path)
        # Convergence monitors only the executed representatives; the
        # synthesized/duplicate remainder never runs.
        assert (on.convergence_stats.runs
                == on.pruning_stats.executed_injections)
        assert on.convergence_stats.runs <= SAMPLES

    def test_converge_interval_does_not_change_results(self, built):
        program = built["bfs"]["ferrum"]
        reference = run_campaign(program, samples=SAMPLES, seed=SEED,
                                 telemetry=True)
        for interval in (16, 50, 1000):
            tuned = run_campaign(program, samples=SAMPLES, seed=SEED,
                                 telemetry=True, converge=True,
                                 converge_interval=interval)
            assert_campaigns_identical(tuned, reference,
                                       context=f"interval={interval}")


class TestComposeAndService:
    def test_compose_cold_and_warm_cache(self, built, tmp_path):
        program = built["knn"]["ferrum"]
        flat_path = tmp_path / "flat.jsonl"
        flat = run_campaign(program, samples=SAMPLES, seed=SEED,
                            telemetry=True, jsonl_path=flat_path)
        cache = tmp_path / "cache"
        for tag in ("cold", "warm"):
            path = tmp_path / f"{tag}.jsonl"
            composed = compose_campaign(program, SAMPLES, seed=SEED,
                                        telemetry=True, jsonl_path=path,
                                        cache_dir=cache, converge=True)
            assert_campaigns_identical(composed, flat, context=tag)
            assert_jsonl_identical(path, flat_path)
        # The warm pass never executed, so its stats cover zero runs.
        assert composed.compose_stats.cache_hits > 0
        assert composed.convergence_stats.runs == 0

    def test_compose_cache_keys_disjoint_from_plain(self, built, tmp_path):
        """Converged and plain campaigns must never share cache entries:
        the trail fingerprint partitions the key space."""
        program = built["bfs"]["ferrum"]
        cache = tmp_path / "cache"
        compose_campaign(program, SAMPLES, seed=SEED, telemetry=True,
                         cache_dir=cache, converge=True)
        from repro.faultinjection.compose import SectionCache

        converged_keys = SectionCache(cache).keys()
        plain = compose_campaign(program, SAMPLES, seed=SEED, telemetry=True,
                                 cache_dir=cache)
        assert plain.compose_stats.cache_hits == 0
        assert SectionCache(cache).keys() > converged_keys

    def test_service_bytes_identical_and_resume(self, built, tmp_path):
        from repro.faultinjection.service import (
            CampaignSpec,
            ServiceConfig,
            resume_campaign,
            serve_campaign,
        )

        config = ServiceConfig(workers=0, fsync=False)
        base = dict(workloads=("bfs",), techniques=("ferrum",),
                    samples=SAMPLES, seed=SEED, shard_size=5)
        off = serve_campaign(tmp_path / "off",
                             CampaignSpec(**base), config)
        on = serve_campaign(tmp_path / "on",
                            CampaignSpec(**base, converge=True), config)
        off_bytes = open(off.results["bfs-ferrum"], "rb").read()
        on_bytes = open(on.results["bfs-ferrum"], "rb").read()
        assert on_bytes == off_bytes
        resumed = resume_campaign(tmp_path / "on", config)
        assert resumed.complete and resumed.executed_shards == 0
        assert open(resumed.results["bfs-ferrum"], "rb").read() == off_bytes
        summary = json.load(open(on.summary_path))
        assert summary["spec"]["converge"] is True

    def test_service_kill_midway_resumes_identically(self, built, tmp_path):
        """A converge campaign whose supervisor dies mid-flight resumes to
        the same bytes an uninterrupted one produces (fail_shards makes
        the first attempt of one shard crash, exercising requeue)."""
        from repro.faultinjection.service import (
            CampaignSpec,
            ServiceConfig,
            serve_campaign,
        )

        spec = CampaignSpec(workloads=("bfs",), techniques=("ferrum",),
                            samples=SAMPLES, seed=SEED, shard_size=5,
                            converge=True)
        clean = serve_campaign(
            tmp_path / "clean", spec, ServiceConfig(workers=0, fsync=False))
        chaotic = serve_campaign(
            tmp_path / "chaos", spec,
            ServiceConfig(workers=2, fsync=False, backoff_base=0.01,
                          fail_shards={"u00-s0000": 1}))
        assert chaotic.complete
        assert (open(chaotic.results["bfs-ferrum"], "rb").read()
                == open(clean.results["bfs-ferrum"], "rb").read())


class TestStatsAndErrors:
    def test_stats_identical_across_campaign_engines(self, built):
        program = built["bfs"]["ferrum"]
        by_engine = {
            engine: run_campaign(program, samples=SAMPLES, seed=SEED,
                                 converge=True, engine=engine)
            for engine in ("checkpoint", "replay")
        }
        summaries = {engine: result.convergence_stats.summary()
                     for engine, result in by_engine.items()}
        assert summaries["checkpoint"] == summaries["replay"]
        stats = by_engine["checkpoint"].convergence_stats
        assert stats.runs == SAMPLES
        assert 0 <= stats.converged <= stats.runs
        assert stats.instructions_saved >= 0
        if stats.converged:
            assert stats.mean_convergence_distance > 0

    def test_stats_merge_is_sum(self):
        from repro.faultinjection.telemetry import ConvergenceStats

        a = ConvergenceStats(runs=3, converged=1, instructions_saved=100,
                             distance_sites=7, boundaries_compared=4)
        b = ConvergenceStats(runs=2, converged=2, instructions_saved=50,
                             distance_sites=9, boundaries_compared=3)
        a.merge(b)
        assert (a.runs, a.converged, a.instructions_saved,
                a.distance_sites, a.boundaries_compared) == (5, 3, 150, 16, 7)
        assert a.converged_fraction == 3 / 5
        assert a.mean_convergence_distance == 16 / 3

    def test_ir_campaign_rejects_converge(self):
        ir = compile_to_ir(get_workload("bfs").source(1))
        with pytest.raises(InjectionError, match="assembly-level only"):
            run_ir_campaign(ir, samples=2, converge=True)


class TestRunOrderedWriterBound:
    """Satellite: the pruned-campaign reorder buffer is bounded and eager.

    The pathological arrival order for the old implementation — every
    synthesized record pre-pushed, every duplicate clone materialized at
    representative-arrival time — made the buffer O(campaign). The
    rewritten buffer holds only out-of-order executed records plus
    representatives with pending clones; ``peak_buffer`` pins the bound.
    """

    @staticmethod
    def _record(run_index):
        from repro.faultinjection.outcome import Outcome
        from repro.faultinjection.telemetry import FaultRecord

        return FaultRecord(
            run_index=run_index, level="asm", site_index=run_index,
            instruction="nop", mnemonic="nop", origin="app",
            register="rax", bit=0, outcome=Outcome.BENIGN,
            detection_latency=None,
        )

    class _Spy:
        def __init__(self):
            self.seen = []

        def write(self, record):
            self.seen.append(record.run_index)

    def test_pathological_order_stays_bounded(self):
        """90 synthesized runs, one late representative with clones spread
        across the index space: peak residency stays O(executed), not
        O(campaign)."""
        from repro.faultinjection.campaign import _RunOrderedWriter
        from repro.faultinjection.equivalence import PruningAnalysis

        total = 100
        executed = (99, 50, 0)               # arrive in reverse run order
        clones = {0: [25, 75], 50: [60]}
        synthesized = [
            (run, self._record(run)) for run in range(total)
            if run not in executed
            and run not in {c for cs in clones.values() for c in cs}
        ]
        analysis = PruningAnalysis(synthesized=synthesized,
                                   duplicates=clones)
        sink = self._Spy()
        writer = _RunOrderedWriter(sink, analysis)
        assert sink.seen == []               # run 0 is executed, not synth
        writer.write(self._record(99))       # maximally out of order
        writer.write(self._record(50))
        assert sink.seen == []
        writer.write(self._record(0))        # releases the whole campaign
        assert sink.seen == list(range(total))
        # Peak: two pending executed records (99, 50) plus at most two
        # retained representatives — nowhere near the 100-run campaign.
        assert writer.peak_buffer <= 4

    def test_representative_released_after_last_clone(self):
        from repro.faultinjection.campaign import _RunOrderedWriter
        from repro.faultinjection.equivalence import PruningAnalysis

        analysis = PruningAnalysis(
            synthesized=[(1, self._record(1)), (3, self._record(3))],
            duplicates={0: [2, 4]},
        )
        sink = self._Spy()
        writer = _RunOrderedWriter(sink, analysis)
        writer.write(self._record(0))
        assert sink.seen == [0, 1, 2, 3, 4]
        assert writer._rep_records == {}     # dropped at clone 4's flush
        assert writer.peak_buffer <= 1

    def test_streamed_file_matches_buffered_order(self, built, tmp_path):
        program = built["bfs"]["ferrum"]
        path = tmp_path / "converge-prune.jsonl"
        result = run_campaign(program, samples=SAMPLES, seed=SEED,
                              telemetry=True, prune=True, converge=True,
                              jsonl_path=path)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["run_index"] for line in lines] \
            == list(range(SAMPLES))
        assert lines == [json.dumps(record.to_json(), sort_keys=True)
                         for record in result.records]
