"""Campaign telemetry tests: records, aggregation, streaming, invariance.

The load-bearing property is *observational purity*: telemetry may never
change which faults a campaign samples or how they classify. Several tests
here pin that down by comparing telemetry-on and telemetry-off campaigns
(and checkpoint vs replay engines) record by record and count by count.
"""

import json

import pytest

from repro.faultinjection.campaign import run_campaign, run_ir_campaign
from repro.faultinjection.injector import FaultPlan, inject_asm_fault
from repro.faultinjection.outcome import Outcome, OutcomeCounts
from repro.faultinjection.telemetry import (
    CheckpointStats,
    FaultRecord,
    JsonlSink,
    TelemetryAggregate,
    detection_latencies,
    latency_histogram,
    normalize_origin,
    outcomes_by_instruction,
    outcomes_by_origin,
    read_jsonl,
)
from repro.machine.cpu import Machine
from repro.pipeline import build_variants

SOURCE = """
int main() {
    int acc = 0;
    for (int i = 0; i < 12; i++) { acc += i * 5 + 2; }
    print_int(acc);
    return 0;
}
"""

SAMPLES = 60


@pytest.fixture(scope="module")
def build():
    return build_variants(SOURCE, names=("raw", "ir-eddi", "ferrum"))


def _record(run_index=0, origin="app", outcome=Outcome.BENIGN, latency=None,
            instruction="addl $1, %eax", uid=None):
    return FaultRecord(
        run_index=run_index, level="asm", site_index=run_index,
        instruction=instruction, mnemonic=instruction.split()[0],
        origin=origin, register="eax", bit=3, outcome=outcome,
        detection_latency=latency, instruction_uid=uid,
    )


class TestFaultRecord:
    def test_json_roundtrip(self):
        record = _record(origin="dup", outcome=Outcome.DETECTED, latency=7,
                         uid=99)
        data = record.to_json()
        assert data["outcome"] == "detected"
        assert FaultRecord.from_json(data) == record

    def test_normalize_origin(self):
        assert normalize_origin("orig") == "app"
        for tag in ("dup", "pre", "capture", "check", "instrumentation"):
            assert normalize_origin(tag) == tag


class TestAggregation:
    def test_outcomes_by_origin(self):
        records = [
            _record(0, "app", Outcome.SDC),
            _record(1, "app", Outcome.BENIGN),
            _record(2, "dup", Outcome.DETECTED, latency=3),
        ]
        by = outcomes_by_origin(records)
        assert by["app"][Outcome.SDC] == 1
        assert by["app"].total == 2
        assert by["dup"][Outcome.DETECTED] == 1

    def test_outcomes_by_instruction_prefers_uid(self):
        # Same printed text, different uids: distinct static instructions.
        records = [
            _record(0, uid=1), _record(1, uid=2), _record(2, uid=1),
        ]
        by = outcomes_by_instruction(records)
        assert len(by) == 2
        assert by[("asm", 1)].outcomes.total == 2

    def test_latency_histogram_buckets(self):
        records = [
            _record(i, outcome=Outcome.DETECTED, latency=lat)
            for i, lat in enumerate([0, 1, 1, 5, 9])
        ] + [_record(9, outcome=Outcome.BENIGN)]
        assert detection_latencies(records) == [0, 1, 1, 5, 9]
        buckets = latency_histogram(records)
        assert buckets[0] == (0, 1, 1)
        assert buckets[1] == (1, 2, 2)
        assert buckets[-1] == (8, 16, 1)

    def test_empty_histogram(self):
        assert latency_histogram([_record(0)]) == []


class TestJsonl:
    def test_sink_roundtrip(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        records = [_record(i, outcome=Outcome.DETECTED, latency=i)
                   for i in range(5)]
        with JsonlSink(path) as sink:
            for record in records:
                sink.write(record)
        assert sink.written == 5
        assert read_jsonl(path) == records

    def test_append_mode(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        with JsonlSink(path) as sink:
            sink.write(_record(0))
        with JsonlSink(path, mode="a") as sink:
            sink.write(_record(1))
        assert [r.run_index for r in read_jsonl(path)] == [0, 1]

    def test_write_after_close_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "faults.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write(_record(0))


class TestInjectorTelemetry:
    def test_record_matches_plain_outcome(self, build):
        program = build["ferrum"].asm
        golden = Machine(program).run()
        for site in range(0, golden.fault_sites, 7):
            plan = FaultPlan(site, 0.5, 0.5)
            plain = inject_asm_fault(program, plan, golden)
            record = inject_asm_fault(program, plan, golden, telemetry=True,
                                      run_index=site)
            assert isinstance(record, FaultRecord)
            assert record.outcome is plain
            assert record.run_index == site
            assert record.site_index == site
            if record.outcome is Outcome.DETECTED:
                assert record.detection_latency >= 1
            else:
                assert record.detection_latency is None

    def test_origin_attribution(self, build):
        program = build["ferrum"].asm
        golden = Machine(program).run()
        origins = {
            inject_asm_fault(program, FaultPlan(site, 0.5, 0.5), golden,
                             telemetry=True).origin
            for site in range(0, golden.fault_sites, 5)
        }
        # FERRUM binaries interleave app code with transform-inserted
        # instructions; telemetry must see both sides.
        assert "app" in origins
        assert origins - {"app"}


class TestCampaignTelemetry:
    def test_counts_bit_identical_with_telemetry(self, build):
        program = build["ferrum"].asm
        plain = run_campaign(program, SAMPLES, seed=7)
        traced = run_campaign(program, SAMPLES, seed=7, telemetry=True)
        assert plain.outcomes.counts == traced.outcomes.counts
        assert plain.records is None
        assert len(traced.records) == SAMPLES
        assert [r.run_index for r in traced.records] == list(range(SAMPLES))

    def test_checkpoint_and_replay_records_identical(self, build):
        program = build["ferrum"].asm
        checkpointed = run_campaign(program, SAMPLES, seed=7, telemetry=True)
        replayed = run_campaign(program, SAMPLES, seed=7, telemetry=True,
                                engine="replay")
        assert checkpointed.records == replayed.records

    def test_checkpoint_stats_populated(self, build):
        result = run_campaign(build["ferrum"].asm, SAMPLES, seed=7,
                              telemetry=True)
        stats = result.checkpoint_stats
        assert isinstance(stats, CheckpointStats)
        assert 0 < stats.snapshots <= SAMPLES
        assert stats.restores == SAMPLES
        assert stats.snapshot_bytes > 0
        assert stats.fast_forward_sites == 0  # exact-site checkpoints
        assert "snapshots" in stats.summary()

    def test_interval_checkpoints_fast_forward(self, build):
        result = run_campaign(build["ferrum"].asm, SAMPLES, seed=7,
                              telemetry=True, checkpoint_interval=64)
        assert result.checkpoint_stats.fast_forward_sites > 0

    def test_replay_engine_has_no_checkpoint_stats(self, build):
        result = run_campaign(build["ferrum"].asm, 10, seed=7,
                              telemetry=True, engine="replay")
        assert result.checkpoint_stats is None

    def test_jsonl_stream_matches_memory(self, build, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = run_campaign(build["ferrum"].asm, SAMPLES, seed=7,
                              jsonl_path=path)
        assert result.records is not None  # jsonl_path implies telemetry
        assert sorted(read_jsonl(path), key=lambda r: r.run_index) \
            == result.records

    def test_parallel_telemetry_identical(self, build):
        program = build["ferrum"].asm
        sequential = run_campaign(program, SAMPLES, seed=7, telemetry=True)
        parallel = run_campaign(program, SAMPLES, seed=7, telemetry=True,
                                processes=2)
        assert parallel.records == sequential.records
        assert parallel.outcomes.counts == sequential.outcomes.counts

    def test_detected_faults_have_latency(self, build):
        result = run_campaign(build["ferrum"].asm, SAMPLES, seed=7,
                              telemetry=True)
        detected = [r for r in result.records
                    if r.outcome is Outcome.DETECTED]
        assert detected
        assert all(r.detection_latency >= 1 for r in detected)

    def test_record_counts_rebuild_outcome_counts(self, build):
        result = run_campaign(build["ferrum"].asm, SAMPLES, seed=7,
                              telemetry=True)
        rebuilt = OutcomeCounts()
        for record in result.records:
            rebuilt.record(record.outcome)
        assert rebuilt.counts == result.outcomes.counts


class TestIRCampaignTelemetry:
    def test_ir_records(self, build):
        module = build["ir-eddi"].ir
        plain = run_ir_campaign(module, 30, seed=3)
        traced = run_ir_campaign(module, 30, seed=3, telemetry=True)
        assert plain.outcomes.counts == traced.outcomes.counts
        assert len(traced.records) == 30
        assert all(r.level == "ir" for r in traced.records)
        assert all(r.register is None for r in traced.records)
        detected = [r for r in traced.records
                    if r.outcome is Outcome.DETECTED]
        assert all(r.detection_latency >= 1 for r in detected)


class TestDurableJsonl:
    """Crash-durability of the sink and torn-tail tolerance of the reader."""

    def test_fsync_mode_lines_visible_without_close(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        sink = JsonlSink(path, fsync=True)
        sink.write(_record(0))
        sink.write(_record(1))
        # Durable before close: a reader (or a resumed service) sees every
        # written line even though the sink is still open.
        assert [r.run_index for r in read_jsonl(path)] == [0, 1]
        sink.close()

    def test_unterminated_tail_dropped(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        with JsonlSink(path) as sink:
            sink.write(_record(0))
            sink.write(_record(1))
        with open(path, "ab") as handle:
            handle.write(b'{"run_index": 2, "level"')  # kill -9 mid-write
        assert [r.run_index for r in read_jsonl(path)] == [0, 1]

    def test_unparsable_final_line_dropped(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        with JsonlSink(path) as sink:
            sink.write(_record(0))
        with open(path, "ab") as handle:
            handle.write(b'{"valid_json": "but not a fault record"}\n')
        assert [r.run_index for r in read_jsonl(path)] == [0]

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        record_line = (json.dumps(_record(0).to_json(), sort_keys=True)
                       + "\n").encode()
        with open(path, "wb") as handle:
            handle.write(record_line)
            handle.write(b"garbage\n")
            handle.write(record_line)
        with pytest.raises(ValueError, match="not the final line"):
            read_jsonl(path)

    def test_sync_after_close_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "faults.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.sync()


class TestTelemetryAggregate:
    def _records(self):
        return [
            _record(0, origin="app", outcome=Outcome.BENIGN),
            _record(1, origin="dup", outcome=Outcome.DETECTED, latency=0),
            _record(2, origin="dup", outcome=Outcome.DETECTED, latency=1),
            _record(3, origin="check", outcome=Outcome.DETECTED, latency=5),
            _record(4, origin="app", outcome=Outcome.SDC),
            _record(5, origin="app", outcome=Outcome.CRASH),
        ]

    def test_add_matches_bulk_helpers(self):
        records = self._records()
        aggregate = TelemetryAggregate()
        for record in records:
            aggregate.add(record)
        assert aggregate.records == len(records)
        assert aggregate.counts[Outcome.DETECTED] == 3
        by_origin = outcomes_by_origin(records)
        for origin, counts in aggregate.by_origin.items():
            assert counts.counts == by_origin[origin].counts
        assert aggregate.latency_rows() == latency_histogram(records)

    def test_merge_equals_whole(self):
        records = self._records()
        whole = TelemetryAggregate()
        for record in records:
            whole.add(record)
        # Any partition, any order: shard-wise merge == sequential pass.
        merged = TelemetryAggregate()
        for chunk in (records[4:], records[:2], records[2:4]):
            part = TelemetryAggregate()
            for record in chunk:
                part.add(record)
            merged.merge(part)
        assert merged.to_json() == whole.to_json()
        assert merged.latency_rows() == whole.latency_rows()

    def test_json_roundtrip(self):
        aggregate = TelemetryAggregate()
        for record in self._records():
            aggregate.add(record)
        rebuilt = TelemetryAggregate.from_json(aggregate.to_json())
        assert rebuilt.to_json() == aggregate.to_json()
        assert rebuilt.latency_rows() == aggregate.latency_rows()

    def test_empty(self):
        aggregate = TelemetryAggregate()
        assert aggregate.records == 0
        assert aggregate.latency_rows() == []
        assert TelemetryAggregate.from_json(
            aggregate.to_json()).to_json() == aggregate.to_json()
