"""IR loop nests mirror the assembly-level section regions.

The backend preserves block labels when lowering, so the loop regions the
IR reports must agree with :func:`repro.asm.analysis.loop_regions` on the
compiled program — that is what lets tooling reason about campaign
sections without compiling.
"""

from repro.backend import compile_module
from repro.ir.loops import loop_nests, loop_regions, module_regions
from repro.minic import compile_to_ir
from repro.workloads import get_workload


def test_loop_nests_found_in_workload():
    module = compile_to_ir(get_workload("bfs").source(1))
    main = next(func for func in module.functions if func.name == "main")
    nests = loop_nests(main)
    assert nests, "bfs main has loops"
    assert all(loop.header in {blk.label for blk in main.blocks}
               for loop in nests)


def test_regions_cover_every_block():
    module = compile_to_ir(get_workload("knn").source(1))
    for func in module.functions:
        regions = loop_regions(func)
        assert set(regions) == {blk.label for blk in func.blocks}
        assert all(region.split("@", 1)[0] == func.name
                   for region in regions.values())


def test_ir_regions_agree_with_asm_regions():
    """The backend mangles block labels (``entry`` -> ``.Lmain_entry``)
    but preserves block structure, so IR regions must map 1:1 onto the
    compiled program's regions through the mangling."""
    from repro.asm.analysis import loop_regions as asm_loop_regions

    module = compile_to_ir(get_workload("pathfinder").source(1))
    program = compile_module(module)
    ir_regions = module_regions(module)

    def mangle(func_name, ir_label):
        return f".L{func_name}_{ir_label}"

    def mangle_region(func_name, region):
        if "@" not in region:
            return region
        name, header = region.split("@", 1)
        return f"{name}@{mangle(func_name, header)}"

    for func in program.functions:
        asm_regions = asm_loop_regions(func)
        ir_map = ir_regions.get(func.name, {})
        compared = 0
        for ir_label, ir_region in ir_map.items():
            asm_label = mangle(func.name, ir_label)
            if asm_label not in asm_regions:
                continue  # blocks the backend merged or renamed
            assert (asm_regions[asm_label]
                    == mangle_region(func.name, ir_region)), ir_label
            compared += 1
        assert compared > 0, f"{func.name}: no comparable blocks"
