"""IR interpreter tests."""

import pytest

from repro.errors import DetectionExit, ExecutionLimitExceeded, MachineFault
from repro.ir.interp import IRInterpreter
from repro.minic import compile_to_ir


def run_ir(source: str, **kwargs):
    return IRInterpreter(compile_to_ir(source), **kwargs).run()


class TestBasicExecution:
    def test_arithmetic(self):
        result = run_ir("int main() { print_int(2 + 3 * 4); return 0; }")
        assert result.output == ("14",)

    def test_exit_code(self):
        assert run_ir("int main() { return 41; }").exit_code == 41

    def test_negative_printing(self):
        assert run_ir("int main() { print_int(-5); return 0; }").output == ("-5",)

    def test_long_arithmetic(self):
        result = run_ir("""
            int main() {
                long big = 4000000000;
                big = big * 3;
                print_long(big);
                return 0;
            }
        """)
        assert result.output == ("12000000000",)

    def test_division_truncates_toward_zero(self):
        result = run_ir("""
            int main() {
                print_int(-7 / 2);
                print_int(-7 % 2);
                return 0;
            }
        """)
        assert result.output == ("-3", "-1")

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineFault):
            run_ir("int main() { int z = 0; return 5 / z; }")

    def test_malloc_and_arrays(self):
        result = run_ir("""
            int main() {
                int* p = malloc(12);
                p[0] = 10; p[1] = 20; p[2] = 30;
                print_int(p[0] + p[1] + p[2]);
                return 0;
            }
        """)
        assert result.output == ("60",)

    def test_local_array(self):
        result = run_ir("""
            int main() {
                int a[4];
                for (int i = 0; i < 4; i++) { a[i] = i * i; }
                print_int(a[3]);
                return 0;
            }
        """)
        assert result.output == ("9",)

    def test_function_calls(self):
        result = run_ir("""
            int square(int x) { return x * x; }
            int main() { print_int(square(9)); return 0; }
        """)
        assert result.output == ("81",)

    def test_recursion(self):
        result = run_ir("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { print_int(fib(10)); return 0; }
        """)
        assert result.output == ("55",)

    def test_rand_deterministic(self):
        src = """
            int main() {
                srand(3);
                print_int(rand_next() % 1000);
                return 0;
            }
        """
        assert run_ir(src).output == run_ir(src).output

    def test_exit_builtin(self):
        result = run_ir("int main() { exit(9); print_int(1); return 0; }")
        assert result.exit_code == 9
        assert result.output == ()

    def test_instruction_budget(self):
        with pytest.raises(ExecutionLimitExceeded):
            run_ir("int main() { while (1) { } return 0; }",
                   max_instructions=500)


class TestFaultInjectionInterface:
    def test_fault_sites_counted(self):
        result = run_ir("int main() { return 1 + 2; }")
        assert result.fault_sites > 0

    def test_flip_changes_output(self):
        module = compile_to_ir("int main() { print_int(4 + 4); return 0; }")
        interp = IRInterpreter(module)
        golden = interp.run()

        def hook(ip, instr, site):
            if instr.opcode == "add" and instr.has_result:
                ip.flip_value(instr, 0)

        faulty = IRInterpreter(module).run(fault_hook=hook)
        assert faulty.output != golden.output

    def test_check_detects_mismatch(self):
        from repro.eddi.ir_eddi import protect_module

        module = compile_to_ir("int main() { print_int(4 + 4); return 0; }")
        protect_module(module)
        interp = IRInterpreter(module)
        interp.run()  # fault-free: no detection

        flipped = {"done": False}

        def hook(ip, instr, site):
            if instr.opcode == "add" and not instr.name.endswith(".dup") \
                    and not flipped["done"]:
                ip.flip_value(instr, 2)
                flipped["done"] = True

        with pytest.raises(DetectionExit):
            IRInterpreter(module).run(fault_hook=hook)
