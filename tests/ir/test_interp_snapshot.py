"""Snapshot/resume determinism for the IR interpreter.

Mirrors ``tests/machine/test_snapshot.py`` one layer up: the explicit
frame-stack interpreter must checkpoint mid-call-stack and resume
bit-identically, including cumulative instruction/site counters — the
contract ``run_ir_campaign``'s checkpoint engine is built on.
"""

import pytest

from repro.errors import IRInterpError
from repro.ir.interp import IRInterpreter
from repro.minic import compile_to_ir

SOURCE = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int* buf = malloc(40);
    srand(9);
    for (int i = 0; i < 10; i++) { buf[i] = rand_next() % 9; }
    int total = 0;
    for (int i = 0; i < 10; i++) { total += fib(buf[i]); }
    print_int(total);
    print_long(total * 10);
    return total % 5;
}
"""


@pytest.fixture(scope="module")
def module():
    return compile_to_ir(SOURCE)


def _result_tuple(result):
    return (result.exit_code, result.output, result.dynamic_instructions,
            result.fault_sites)


class TestIRSnapshotResume:
    def test_resume_matches_uninterrupted_run(self, module):
        golden = IRInterpreter(module).run()
        interp = IRInterpreter(module)
        for target in (0, 1, golden.fault_sites // 2, golden.fault_sites - 1):
            snap = interp.run_to_site(target)
            resumed = interp.run(resume_from=snap)
            assert _result_tuple(resumed) == _result_tuple(golden)

    def test_snapshot_mid_call_stack(self, module):
        """Checkpoints taken while frames are live restore the whole stack."""
        golden = IRInterpreter(module).run()
        interp = IRInterpreter(module)
        # Probe many sites; recursion in fib guarantees some of these land
        # with several frames on the stack.
        for target in range(10, golden.fault_sites - 1, golden.fault_sites // 7):
            snap = interp.run_to_site(target)
            assert snap.sites == target
            resumed = interp.run(resume_from=snap)
            assert _result_tuple(resumed) == _result_tuple(golden)

    def test_chained_advance_equals_direct(self, module):
        direct = IRInterpreter(module).run_to_site(120)
        interp = IRInterpreter(module)
        cursor = None
        for target in (30, 60, 120):
            cursor = interp.run_to_site(target, resume_from=cursor)
        assert cursor == direct

    def test_restore_is_repeatable(self, module):
        interp = IRInterpreter(module)
        snap = interp.run_to_site(40)
        results = {_result_tuple(interp.run(resume_from=snap))
                   for _ in range(3)}
        assert len(results) == 1

    def test_snapshot_values_immune_to_mutation(self, module):
        interp = IRInterpreter(module)
        snap = interp.run_to_site(40)
        values_before = dict(snap.frames[-1].values)
        interp.current_values[next(iter(values_before))] = 0xDEAD
        interp.output.append("garbage")
        interp.lcg_state = 1
        assert snap.frames[-1].values == values_before
        resumed = interp.run(resume_from=snap)
        assert _result_tuple(resumed) == _result_tuple(IRInterpreter(module).run())

    def test_cannot_run_backwards(self, module):
        interp = IRInterpreter(module)
        snap = interp.run_to_site(50)
        with pytest.raises(IRInterpError):
            interp.run_to_site(10, resume_from=snap)

    def test_target_past_end_raises(self, module):
        golden = IRInterpreter(module).run()
        with pytest.raises(IRInterpError):
            IRInterpreter(module).run_to_site(golden.fault_sites + 1)
