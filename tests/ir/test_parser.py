"""IR text parser tests, including the print/parse fixpoint property."""

import pytest

from repro.backend import compile_module
from repro.eddi.ir_eddi import protect_module
from repro.ir.interp import IRInterpreter
from repro.ir.parser import IRParseError, parse_ir, parse_type
from repro.ir.printer import format_module
from repro.ir.types import I1, I32, I64, PointerType, VOID
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir
from repro.workloads import get_workload


class TestParseType:
    def test_int_types(self):
        assert parse_type("i32") == I32
        assert parse_type("i64") == I64
        assert parse_type("i1") == I1

    def test_pointers(self):
        assert parse_type("i32*") == PointerType(I32)
        assert parse_type("i32**") == PointerType(PointerType(I32))
        assert parse_type("ptr") == PointerType(None)

    def test_void(self):
        assert parse_type("void") == VOID

    def test_unknown_rejected(self):
        with pytest.raises(Exception):
            parse_type("f32")


class TestHandwritten:
    def test_minimal_function(self):
        module = parse_ir("""
            define i32 @main() {
            entry:
              %x = add i32 2, 3
              ret i32 %x
            }
        """)
        assert IRInterpreter(module).run().exit_code == 5

    def test_memory_and_calls(self):
        module = parse_ir("""
            define i32 @main() {
            entry:
              %slot = alloca i32
              store i32 41, %slot
              %v = load i32, %slot
              %w = add i32 %v, 1
              call void @print_int(%w)
              ret i32 0
            }
        """)
        assert IRInterpreter(module).run().output == ("42",)

    def test_branching(self):
        module = parse_ir("""
            define i32 @main() {
            entry:
              %c = icmp slt i32 1, 2
              br i1 %c, label %yes, label %no
            yes:
              ret i32 7
            no:
              ret i32 9
            }
        """)
        assert IRInterpreter(module).run().exit_code == 7

    def test_unknown_value_rejected(self):
        with pytest.raises(IRParseError):
            parse_ir("""
                define i32 @main() {
                entry:
                  ret i32 %ghost
                }
            """)

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(IRParseError):
            parse_ir("%x = add i32 1, 2")

    def test_unterminated_function_rejected(self):
        with pytest.raises(IRParseError):
            parse_ir("define i32 @f() {\nentry:\n  ret i32 0\n")

    def test_redefinition_rejected(self):
        with pytest.raises(IRParseError):
            parse_ir("""
                define i32 @main() {
                entry:
                  %x = add i32 1, 2
                  %x = add i32 3, 4
                  ret i32 %x
                }
            """)


class TestFixpoint:
    def _roundtrip(self, source: str) -> None:
        module = compile_to_ir(source)
        text = format_module(module)
        reparsed = parse_ir(text)
        assert format_module(reparsed) == text
        # Behavioural equivalence through both the interpreter and backend.
        assert IRInterpreter(module).run().output == \
            IRInterpreter(reparsed).run().output
        assert Machine(compile_module(reparsed)).run().output == \
            IRInterpreter(module).run().output

    def test_roundtrip_simple(self):
        self._roundtrip("int main() { print_int(6 * 7); return 0; }")

    def test_roundtrip_control_flow(self):
        self._roundtrip("""
            int main() {
                int total = 0;
                for (int i = 0; i < 9; i++) {
                    if (i % 2 == 0 || i == 7) { total += i; }
                }
                print_int(total);
                return 0;
            }
        """)

    def test_roundtrip_workload(self):
        self._roundtrip(get_workload("knn").source(1))

    def test_roundtrip_protected_ir(self):
        module = compile_to_ir(
            "int main() { print_int(1 + 2 + 3); return 0; }"
        )
        protect_module(module)
        text = format_module(module)
        assert format_module(parse_ir(text)) == text
