"""IR instruction/builder/verifier/printer tests."""

import pytest

from repro.errors import IRError, IRVerifyError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import BinOp, Br, Check, ICmp, Load, Ret, Store
from repro.ir.module import IRFunction, IRModule
from repro.ir.printer import format_function, format_instruction, format_module
from repro.ir.types import I1, I32, I64, PointerType
from repro.ir.values import Constant
from repro.ir.verifier import verify_module


def _simple_function() -> tuple[IRModule, IRFunction, IRBuilder]:
    module = IRModule()
    func = IRFunction("f", [("x", I32)], I32)
    module.add_function(func)
    builder = IRBuilder(func)
    builder.position_at(func.add_block("entry"))
    return module, func, builder


class TestInstructionConstruction:
    def test_binop_type_mismatch_rejected(self):
        with pytest.raises(IRError):
            BinOp("add", Constant(1, I32), Constant(1, I64))

    def test_unknown_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("frob", Constant(1, I32), Constant(1, I32))

    def test_icmp_produces_i1(self):
        cmp = ICmp("slt", Constant(1, I32), Constant(2, I32))
        assert cmp.type == I1

    def test_load_requires_typed_pointer(self):
        with pytest.raises(IRError):
            Load(Constant(0, I32))

    def test_br_requires_i1(self):
        with pytest.raises(IRError):
            Br(Constant(1, I32), "a", "b")

    def test_check_requires_matching_types(self):
        with pytest.raises(IRError):
            Check(Constant(1, I32), Constant(1, I64))

    def test_terminator_flags(self):
        assert Ret().is_terminator
        assert not Store(Constant(1, I32),
                         Constant(0, PointerType(I32))).is_terminator


class TestBuilder:
    def test_emission_order(self):
        _, func, builder = _simple_function()
        slot = builder.alloca(I32, name="slot")
        builder.store(Constant(5, I32), slot)
        value = builder.load(slot)
        builder.ret(value)
        opcodes = [i.opcode for i in func.entry.instructions]
        assert opcodes == ["alloca", "store", "load", "ret"]

    def test_emitting_after_terminator_rejected(self):
        _, func, builder = _simple_function()
        builder.ret(Constant(0, I32))
        with pytest.raises(IRError):
            builder.alloca(I32)

    def test_new_block_labels_unique(self):
        _, func, builder = _simple_function()
        a = builder.new_block("bb")
        b = builder.new_block("bb")
        assert a.label != b.label


class TestVerifier:
    def test_valid_module_passes(self):
        module, func, builder = _simple_function()
        slot = builder.alloca(I32)
        builder.store(func.args[0], slot)
        builder.ret(builder.load(slot))
        verify_module(module)

    def test_missing_terminator_rejected(self):
        module, func, builder = _simple_function()
        builder.alloca(I32)
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_cross_block_value_flow_rejected(self):
        module, func, builder = _simple_function()
        entry = builder.block
        value = builder.binop("add", func.args[0], Constant(1, I32))
        second = func.add_block("second")
        builder.jump("second")
        builder.position_at(second)
        builder.ret(value)  # uses a value from 'entry' directly
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_branch_to_unknown_label_rejected(self):
        module, func, builder = _simple_function()
        cond = builder.icmp("eq", func.args[0], Constant(0, I32))
        builder.br(cond, "nowhere", "entry")
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_unknown_callee_rejected(self):
        module, func, builder = _simple_function()
        builder.call("mystery", [], I32)
        builder.ret(Constant(0, I32))
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_builtin_arity_checked(self):
        module, func, builder = _simple_function()
        builder.call("print_int", [], I32)
        builder.ret(Constant(0, I32))
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_module_function_arity_checked(self):
        module, func, builder = _simple_function()
        builder.call("f", [], I32)  # f takes one argument
        builder.ret(Constant(0, I32))
        with pytest.raises(IRVerifyError):
            verify_module(module)

    def test_duplicate_labels_rejected(self):
        module = IRModule()
        func = IRFunction("g", [])
        module.add_function(func)
        func.add_block("a")
        with pytest.raises(IRError):
            func.add_block("a")


class TestPrinter:
    def test_format_instruction_samples(self):
        slot = Constant(0, PointerType(I32))
        store = Store(Constant(3, I32), slot)
        assert "store" in format_instruction(store)

    def test_format_function_contains_blocks(self):
        module, func, builder = _simple_function()
        builder.ret(Constant(0, I32))
        text = format_function(func)
        assert "define i32 @f(i32 %x)" in text
        assert "entry:" in text

    def test_format_module_roundtrips_names(self):
        module, func, builder = _simple_function()
        builder.ret(Constant(0, I32))
        assert "@f" in format_module(module)

    def test_check_printed(self):
        check = Check(Constant(1, I32), Constant(1, I32))
        assert format_instruction(check).startswith("check")
