"""Unit tests for the IR type system."""

from repro.ir.types import (
    I1, I8, I32, I64, IntType, PointerType, VOID, compatible,
)


class TestIntTypes:
    def test_sizes(self):
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert I8.size_bytes == 1
        assert I1.size_bytes == 1

    def test_str(self):
        assert str(I32) == "i32"
        assert str(I1) == "i1"

    def test_equality_by_value(self):
        assert IntType(32) == I32


class TestPointerTypes:
    def test_size_always_8(self):
        assert PointerType(I32).size_bytes == 8
        assert PointerType(None).size_bytes == 8

    def test_element_size(self):
        assert PointerType(I32).element_size == 4
        assert PointerType(I64).element_size == 8
        assert PointerType(None).element_size == 1

    def test_str(self):
        assert str(PointerType(I32)) == "i32*"
        assert str(PointerType(None)) == "ptr"


class TestCompatibility:
    def test_exact_match(self):
        assert compatible(I32, I32)
        assert not compatible(I32, I64)

    def test_wildcard_pointer_adopts(self):
        assert compatible(PointerType(I32), PointerType(None))
        assert compatible(PointerType(None), PointerType(I64))

    def test_distinct_pointees_incompatible(self):
        assert not compatible(PointerType(I32), PointerType(I64))

    def test_pointer_int_incompatible(self):
        assert not compatible(PointerType(I32), I64)

    def test_void_size(self):
        assert VOID.size_bytes == 0
