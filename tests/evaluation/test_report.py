"""Report rendering tests (cheap: built from synthetic results)."""

from repro.evaluation.experiments import (
    CoverageRow,
    Fig10Result,
    Fig11Result,
    GapResult,
    TransformTimeResult,
)
from repro.evaluation.figures import render_latency_chart
from repro.evaluation.report import (
    render_checkpoint_stats,
    render_fig10,
    render_fig11,
    render_gap,
    render_latency_table,
    render_origin_breakdown,
    render_site_map,
    render_table1,
    render_table2,
    render_transform_time,
)
from repro.faultinjection.campaign import CampaignResult
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import CheckpointStats, FaultRecord


def _campaign(sdc: int, total: int = 10) -> CampaignResult:
    result = CampaignResult(samples=total, fault_sites=100)
    for _ in range(sdc):
        result.outcomes.record(Outcome.SDC)
    for _ in range(total - sdc):
        result.outcomes.record(Outcome.BENIGN)
    return result


class TestStaticTables:
    def test_table1_renders(self):
        text = render_table1()
        assert "FERRUM" in text and "comparison" in text

    def test_table2_renders(self):
        text = render_table2()
        assert "particlefilter" in text and "Rodinia" in text


class TestFigureRendering:
    def test_fig10(self):
        row = CoverageRow("bfs", _campaign(5))
        row.campaigns = {"ir-eddi": _campaign(2), "hybrid": _campaign(0),
                         "ferrum": _campaign(0)}
        text = render_fig10(Fig10Result(samples=10, seed=1, rows=[row]))
        assert "bfs" in text
        assert "100.0%" in text   # ferrum/hybrid coverage
        assert "60.0%" in text    # ir-eddi coverage (1 - 2/5)

    def test_fig11(self):
        result = Fig11Result(rows=[{
            "benchmark": "lud", "raw_cycles": 1000,
            "ir-eddi": 0.5, "hybrid": 0.9, "ferrum": 0.2,
        }])
        text = render_fig11(result)
        assert "lud" in text and "20.0%" in text and "AVERAGE" in text

    def test_transform_time(self):
        result = TransformTimeResult(rows=[{
            "benchmark": "bfs", "static_instructions": 400,
            "output_instructions": 1300, "seconds": 0.089,
        }])
        text = render_transform_time(result)
        assert "89.0 ms" in text

    def test_gap(self):
        result = GapResult(samples=10, seed=1, rows=[{
            "benchmark": "knn", "anticipated": 0.98, "measured": 0.70,
            "gap": 0.28,
        }])
        text = render_gap(result)
        assert "knn" in text and "28.0%" in text


def _fault(run_index, origin, outcome, latency=None, uid=None,
           instruction="addl %ecx, %eax"):
    return FaultRecord(
        run_index=run_index, level="asm", site_index=run_index,
        instruction=instruction, mnemonic=instruction.split()[0],
        origin=origin, register="eax", bit=0, outcome=outcome,
        detection_latency=latency, instruction_uid=uid,
    )


class TestTelemetryRendering:
    RECORDS = [
        _fault(0, "app", Outcome.SDC, uid=1),
        _fault(1, "app", Outcome.BENIGN, uid=1),
        _fault(2, "dup", Outcome.DETECTED, latency=3, uid=2,
               instruction="addl %r10d, %r11d"),
        _fault(3, "check", Outcome.DETECTED, latency=40, uid=3,
               instruction="cmpl %r11d, %eax"),
    ]

    def test_origin_breakdown(self):
        text = render_origin_breakdown(self.RECORDS)
        assert "app" in text and "dup" in text and "check" in text
        assert "50.0%" in text  # app SDC rate: 1 of 2

    def test_site_map_ranks_sdc_first(self):
        text = render_site_map(self.RECORDS, top=2)
        lines = text.splitlines()
        assert "top 2" in text
        # The SDC-bearing app instruction outranks the detected ones.
        assert lines.index(next(l for l in lines if "ecx" in l)) \
            < lines.index(next(l for l in lines if "r10d" in l))

    def test_latency_table(self):
        text = render_latency_table(self.RECORDS)
        assert "2 detections" in text and "[2, 4)" in text

    def test_latency_table_empty(self):
        text = render_latency_table([_fault(0, "app", Outcome.BENIGN)])
        assert "no detected faults" in text

    def test_latency_chart(self):
        text = render_latency_chart(self.RECORDS)
        assert "[32, 64)" in text and "D" in text

    def test_latency_chart_empty(self):
        assert "no detected faults" in render_latency_chart([])

    def test_checkpoint_stats(self):
        stats = CheckpointStats(snapshots=4, snapshot_bytes=4096, restores=9,
                                fast_forward_sites=17)
        text = render_checkpoint_stats(stats)
        assert "4 snapshots" in text and "9 restores" in text
        assert "n/a" in render_checkpoint_stats(None)

    def test_compose_stats(self):
        from repro.evaluation.report import render_compose_stats
        from repro.faultinjection.compose import ComposeStats

        stats = ComposeStats(sections=12, populated_sections=5,
                             cache_hits=3, cache_misses=2,
                             executed_injections=7, cached_injections=18)
        text = render_compose_stats(stats)
        assert "5/12 sections" in text
        assert "3 hits" in text and "7 executed" in text
        assert "n/a" in render_compose_stats(None)
