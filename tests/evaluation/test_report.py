"""Report rendering tests (cheap: built from synthetic results)."""

from repro.evaluation.experiments import (
    CoverageRow,
    Fig10Result,
    Fig11Result,
    GapResult,
    TransformTimeResult,
)
from repro.evaluation.report import (
    render_fig10,
    render_fig11,
    render_gap,
    render_table1,
    render_table2,
    render_transform_time,
)
from repro.faultinjection.campaign import CampaignResult
from repro.faultinjection.outcome import Outcome


def _campaign(sdc: int, total: int = 10) -> CampaignResult:
    result = CampaignResult(samples=total, fault_sites=100)
    for _ in range(sdc):
        result.outcomes.record(Outcome.SDC)
    for _ in range(total - sdc):
        result.outcomes.record(Outcome.BENIGN)
    return result


class TestStaticTables:
    def test_table1_renders(self):
        text = render_table1()
        assert "FERRUM" in text and "comparison" in text

    def test_table2_renders(self):
        text = render_table2()
        assert "particlefilter" in text and "Rodinia" in text


class TestFigureRendering:
    def test_fig10(self):
        row = CoverageRow("bfs", _campaign(5))
        row.campaigns = {"ir-eddi": _campaign(2), "hybrid": _campaign(0),
                         "ferrum": _campaign(0)}
        text = render_fig10(Fig10Result(samples=10, seed=1, rows=[row]))
        assert "bfs" in text
        assert "100.0%" in text   # ferrum/hybrid coverage
        assert "60.0%" in text    # ir-eddi coverage (1 - 2/5)

    def test_fig11(self):
        result = Fig11Result(rows=[{
            "benchmark": "lud", "raw_cycles": 1000,
            "ir-eddi": 0.5, "hybrid": 0.9, "ferrum": 0.2,
        }])
        text = render_fig11(result)
        assert "lud" in text and "20.0%" in text and "AVERAGE" in text

    def test_transform_time(self):
        result = TransformTimeResult(rows=[{
            "benchmark": "bfs", "static_instructions": 400,
            "output_instructions": 1300, "seconds": 0.089,
        }])
        text = render_transform_time(result)
        assert "89.0 ms" in text

    def test_gap(self):
        result = GapResult(samples=10, seed=1, rows=[{
            "benchmark": "knn", "anticipated": 0.98, "measured": 0.70,
            "gap": 0.28,
        }])
        text = render_gap(result)
        assert "knn" in text and "28.0%" in text
