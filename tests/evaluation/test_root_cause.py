"""Root-cause analysis tests (paper Sec. IV-B1)."""

import pytest

from repro.asm.instructions import ins
from repro.asm.operands import Imm, Mem, Reg
from repro.asm.registers import get_register
from repro.evaluation.root_cause import (
    RootCauseResult,
    analyze_root_causes,
    classify_site,
)
from repro.pipeline import build_variants

SOURCE = """
int pick(int a, int b) {
    if (a > b) { return a; }
    return b;
}
int main() {
    int* data = malloc(24);
    srand(2);
    for (int i = 0; i < 6; i++) { data[i] = rand_next() % 40; }
    int best = 0;
    for (int i = 0; i < 6; i++) { best = pick(best, data[i]); }
    print_int(best);
    return 0;
}
"""


def _reg(name):
    return Reg(get_register(name))


class TestClassifySite:
    def test_flag_rematerialization(self):
        instr = ins("cmpl", Imm(0), _reg("eax"))
        assert classify_site(instr) == "flag rematerialization (Fig. 9)"

    def test_slot_reload(self):
        instr = ins("movl", Mem(disp=-8, base=get_register("rbp")),
                    _reg("eax"))
        assert classify_site(instr) == "slot reload"

    def test_marshalling(self):
        instr = ins("movl", Mem(disp=-8, base=get_register("rbp")),
                    _reg("edi"), comment="marshal argument")
        assert classify_site(instr) == "call argument marshalling"

    def test_lea_is_mapping(self):
        instr = ins("leaq", Mem(disp=-8, base=get_register("rbp")),
                    _reg("rax"))
        assert classify_site(instr) == "address computation (mapping)"

    def test_arithmetic(self):
        assert classify_site(ins("addl", Imm(1), _reg("eax"))) == "arithmetic"


class TestAnalysis:
    @pytest.fixture(scope="class")
    def build(self):
        return build_variants(SOURCE)

    def test_ir_eddi_has_attributable_sdcs(self, build):
        result = analyze_root_causes(build["ir-eddi"].asm, samples=250,
                                     seed=5)
        assert result.total_sdc > 0
        assert sum(result.by_class.values()) == result.total_sdc
        # The residual SDCs must come from backend-origin instructions
        # (the paper's cross-layer thesis), not from IR-visible ones.
        assert set(result.by_origin) <= {"orig", "check", "instrumentation"}

    def test_ferrum_has_no_sdcs_to_attribute(self, build):
        result = analyze_root_causes(build["ferrum"].asm, samples=120, seed=5)
        assert result.total_sdc == 0
        assert result.by_class == {}

    def test_render(self):
        result = RootCauseResult(samples=10)
        result.record(ins("cmpl", Imm(0), _reg("eax")))
        text = result.render()
        assert "Fig. 9" in text and "1" in text
