"""ASCII figure rendering tests (synthetic data — cheap)."""

from repro.evaluation.experiments import CoverageRow, Fig10Result, Fig11Result
from repro.evaluation.figures import render_fig10_chart, render_fig11_chart
from repro.faultinjection.campaign import CampaignResult
from repro.faultinjection.outcome import Outcome


def _campaign(sdc: int, total: int = 10) -> CampaignResult:
    result = CampaignResult(samples=total, fault_sites=50)
    for _ in range(sdc):
        result.outcomes.record(Outcome.SDC)
    for _ in range(total - sdc):
        result.outcomes.record(Outcome.BENIGN)
    return result


def _fig10() -> Fig10Result:
    row = CoverageRow("bfs", _campaign(5))
    row.campaigns = {"ir-eddi": _campaign(2), "hybrid": _campaign(0),
                     "ferrum": _campaign(0)}
    return Fig10Result(samples=10, seed=1, rows=[row])


class TestFig10Chart:
    def test_full_coverage_bar_is_full_width(self):
        text = render_fig10_chart(_fig10(), width=20)
        assert "F" * 20 in text      # ferrum at 100 %
        assert "H" * 20 in text      # hybrid at 100 %

    def test_partial_coverage_bar_is_shorter(self):
        text = render_fig10_chart(_fig10(), width=20)
        ir_lines = [l for l in text.splitlines() if "I" in l and "|" in l]
        assert ir_lines and "I" * 20 not in ir_lines[0]
        assert "I" * 12 in ir_lines[0]  # 60 % coverage of width 20

    def test_labels_and_legend(self):
        text = render_fig10_chart(_fig10())
        assert "bfs" in text
        assert "F = ferrum" in text

    def test_empty_result(self):
        text = render_fig10_chart(Fig10Result(samples=0, seed=0))
        assert "Fig. 10" in text


class TestFig11Chart:
    def _result(self) -> Fig11Result:
        return Fig11Result(rows=[{
            "benchmark": "lud", "raw_cycles": 100,
            "ir-eddi": 0.40, "hybrid": 0.80, "ferrum": 0.20,
        }])

    def test_scaled_to_peak(self):
        text = render_fig11_chart(self._result(), width=40)
        assert "H" * 40 in text          # peak bar fills the width
        assert "F" * 10 in text and "F" * 11 not in text  # quarter of peak

    def test_percentages_shown(self):
        text = render_fig11_chart(self._result())
        assert "80.0%" in text and "20.0%" in text

    def test_empty_result(self):
        text = render_fig11_chart(Fig11Result())
        assert "Fig. 11" in text
