"""Evaluation-harness tests (small campaigns on a subset of workloads)."""

import pytest

from repro.evaluation.experiments import (
    TECHNIQUES,
    run_crosslayer_gap,
    run_fig10,
    run_fig11,
    run_transform_time,
    table1,
    table2,
)


class TestTables:
    def test_table1_rows(self):
        data = table1()
        assert set(data) == {"IR-LEVEL-EDDI", "HYBRID-ASSEMBLY-LEVEL-EDDI",
                             "FERRUM"}
        assert data["FERRUM"]["branch"] == "AS2"
        assert data["HYBRID-ASSEMBLY-LEVEL-EDDI"]["branch"] == "IR"
        assert data["IR-LEVEL-EDDI"]["basic"] == "IR"
        assert data["IR-LEVEL-EDDI"]["store"] == "-"

    def test_table2_matches_registry(self):
        rows = table2()
        assert len(rows) == 8
        assert rows[0]["Benchmark"] == "backprop"
        assert all(r["Suite"] == "Rodinia" for r in rows)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(workloads=("bfs",))

    def test_row_structure(self, result):
        (row,) = result.rows
        assert row["benchmark"] == "bfs"
        assert row["raw_cycles"] > 0

    def test_overhead_ordering(self, result):
        """The paper's headline: FERRUM < IR-EDDI < HYBRID."""
        (row,) = result.rows
        assert row["ferrum"] < row["ir-eddi"] < row["hybrid"]

    def test_all_overheads_positive(self, result):
        (row,) = result.rows
        assert all(row[t] > 0 for t in TECHNIQUES)

    def test_average_overhead(self, result):
        for technique in TECHNIQUES:
            assert result.average_overhead(technique) == \
                pytest.approx(result.rows[0][technique])


class TestTransformTime:
    def test_rows_and_average(self):
        result = run_transform_time(repeats=1, workloads=("bfs", "knn"))
        assert len(result.rows) == 2
        assert all(r["seconds"] > 0 for r in result.rows)
        assert all(r["output_instructions"] > r["static_instructions"]
                   for r in result.rows)
        assert result.average_seconds > 0


class TestFig10Small:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(samples=30, seed=11, workloads=("knn",))

    def test_protected_campaigns_present(self, result):
        (row,) = result.rows
        assert set(row.campaigns) == set(TECHNIQUES)

    def test_full_coverage_for_assembly_techniques(self, result):
        (row,) = result.rows
        assert row.coverage("ferrum") == 1.0
        assert row.coverage("hybrid") == 1.0

    def test_raw_shows_sdcs(self, result):
        (row,) = result.rows
        assert row.raw.sdc_probability > 0


class TestComposeSmall:
    def test_compose_matches_flat_and_caches(self, tmp_path):
        from repro.evaluation.experiments import run_compose, run_telemetry

        def portable(result):
            # Each run_* builds its own program object, so process-local
            # instruction uids differ; everything observable must not.
            records = []
            for record in result.records:
                data = record.to_json()
                data.pop("instruction_uid", None)
                records.append(data)
            return records

        flat = run_telemetry(workload="knn", samples=25, seed=8)
        cold = run_compose(workload="knn", samples=25, seed=8,
                           cache_dir=tmp_path / "cache")
        assert cold.outcomes.counts == flat.outcomes.counts
        assert portable(cold) == portable(flat)
        assert cold.compose_stats.cache_hits == 0
        warm = run_compose(workload="knn", samples=25, seed=8,
                           cache_dir=tmp_path / "cache")
        assert portable(warm) == portable(flat)
        assert warm.compose_stats.executed_injections == 0
        assert warm.compose_stats.hit_rate == 1.0


class TestGapSmall:
    def test_gap_row_structure(self):
        result = run_crosslayer_gap(samples=25, seed=8, workloads=("knn",))
        (row,) = result.rows
        assert 0.0 <= float(row["measured"]) <= 1.0
        assert float(row["gap"]) == pytest.approx(
            float(row["anticipated"]) - float(row["measured"])
        )
