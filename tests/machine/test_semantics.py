"""Instruction semantics tests: tiny programs through the full machine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.parser import parse_program
from repro.errors import MachineFault
from repro.machine.cpu import Machine
from repro.utils.bitops import to_signed, to_unsigned


def run_snippet(body: str, ret: str = "movq %rax, %rdi\n\tcall print_long"):
    """Wrap a snippet in main, run it, return output lines."""
    text = "\t.globl main\nmain:\n"
    for line in body.strip().splitlines():
        text += f"\t{line.strip()}\n"
    text += f"\t{ret}\n\tmovl $0, %eax\n\tretq\n"
    return Machine(parse_program(text)).run().output


def result_of(body: str) -> int:
    return int(run_snippet(body)[0])


class TestMovFamily:
    def test_mov_immediate(self):
        assert result_of("movq $42, %rax") == 42

    def test_mov32_zero_extends(self):
        assert result_of("movq $-1, %rax\n movl $5, %eax") == 5

    def test_movslq_sign_extends(self):
        assert result_of("""
            movl $-7, %ecx
            movl %ecx, -8(%rsp)
            movslq -8(%rsp), %rax
        """) == -7

    def test_movzbl_zero_extends(self):
        assert result_of("movq $-1, %rcx\n movzbl %cl, %eax") == 255

    def test_load_store_roundtrip(self):
        assert result_of("""
            movq $123, %rcx
            movq %rcx, -16(%rsp)
            movq -16(%rsp), %rax
        """) == 123

    def test_lea_computes_address_without_access(self):
        assert result_of("""
            movq $100, %rcx
            movq $3, %rdx
            leaq 5(%rcx,%rdx,4), %rax
        """) == 117


class TestAlu:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add(self, a, b):
        assert result_of(f"movq ${a}, %rax\n addq ${b}, %rax") == a + b

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_imul(self, a, b):
        assert result_of(f"movq ${a}, %rax\n movq ${b}, %rcx\n"
                         f" imulq %rcx, %rax") == a * b

    def test_sub_order(self):
        # AT&T: subq %rcx, %rax is rax -= rcx.
        assert result_of("movq $10, %rax\n movq $3, %rcx\n subq %rcx, %rax") == 7

    def test_xor_self_zeroes(self):
        assert result_of("movq $99, %rax\n xorq %rax, %rax") == 0

    def test_and_or(self):
        assert result_of("movq $12, %rax\n andq $10, %rax") == 8
        assert result_of("movq $12, %rax\n orq $3, %rax") == 15

    def test_32bit_add_wraps(self):
        assert result_of(
            "movl $2147483647, %eax\n addl $1, %eax\n movslq %eax, %rax\n"
            " movq %rax, -8(%rsp)\n movq -8(%rsp), %rax",
        ) == to_signed(0x8000_0000, 32)

    def test_neg_not_inc_dec(self):
        assert result_of("movq $5, %rax\n negq %rax") == -5
        assert result_of("movq $0, %rax\n notq %rax") == -1
        assert result_of("movq $5, %rax\n incq %rax") == 6
        assert result_of("movq $5, %rax\n decq %rax") == 4


class TestShifts:
    def test_shl_imm(self):
        assert result_of("movq $3, %rax\n shlq $4, %rax") == 48

    def test_sar_keeps_sign(self):
        assert result_of("movq $-16, %rax\n sarq $2, %rax") == -4

    def test_shr_is_logical(self):
        assert result_of("movq $-1, %rax\n shrq $60, %rax") == 15

    def test_shift_by_cl(self):
        assert result_of("movq $1, %rax\n movq $5, %rcx\n shlq %cl, %rax") == 32

    def test_zero_count_leaves_value(self):
        assert result_of("movq $7, %rax\n shlq $0, %rax") == 7


class TestDivision:
    @given(st.integers(-10000, 10000), st.integers(1, 97))
    def test_idivl_quotient_remainder(self, a, b):
        quotient = result_of(f"""
            movl ${a}, %eax
            movl ${b}, %ecx
            cltd
            idivl %ecx
            movslq %eax, %rax
            movq %rax, -8(%rsp)
            movq -8(%rsp), %rax
        """)
        assert quotient == int(a / b)  # x86 truncates toward zero

    def test_idivl_remainder_in_edx(self):
        out = run_snippet("""
            movl $17, %eax
            movl $5, %ecx
            cltd
            idivl %ecx
            movslq %edx, %rax
        """)
        assert int(out[0]) == 2

    def test_idivq(self):
        assert result_of("""
            movq $-100, %rax
            movq $7, %rcx
            cqto
            idivq %rcx
        """) == -14  # truncation toward zero, not floor (-15)

    def test_divide_by_zero_faults(self):
        with pytest.raises(MachineFault):
            run_snippet("movl $1, %eax\n movl $0, %ecx\n cltd\n idivl %ecx")

    def test_idivq_beyond_double_precision(self):
        # (1 << 62) + 12345 is not exactly representable as a float; a
        # float-division implementation (int(dividend / divisor)) returns
        # 658812288346771456 here — off by 8 from the exact quotient.
        assert result_of("""
            movq $4611686018427400249, %rax
            movq $7, %rcx
            cqto
            idivq %rcx
        """) == 658812288346771464

    def test_idivq_negative_beyond_double_precision(self):
        # -((1 << 61) + 991) / 3 truncates toward zero; the float path
        # lands on a different (and floor-rounded) quotient entirely.
        assert result_of("""
            movq $-2305843009213694943, %rax
            movq $3, %rcx
            cqto
            idivq %rcx
        """) == -768614336404564981

    def test_idivl_widened_dividend_beyond_double_precision(self):
        # edx:eax forms a 64-bit dividend (268435457 << 32, beyond 2^53)
        # whose exact 32-bit quotient is 1073741824; float division rounds
        # the ratio up to 1073741825.
        assert result_of("""
            movl $0, %eax
            movl $268435457, %edx
            movl $1073741827, %ecx
            idivl %ecx
            movslq %eax, %rax
        """) == 1073741824

    def test_idivl_quotient_overflow_faults(self):
        # The same widened dividend over a tiny divisor cannot fit its
        # quotient in 32 bits — x86 raises #DE, the machine must too.
        with pytest.raises(MachineFault):
            run_snippet("""
                movl $0, %eax
                movl $268435457, %edx
                movl $3, %ecx
                idivl %ecx
            """)


class TestBranches:
    def test_branch_full_program(self):
        text = """\t.globl main
main:
\tmovl $5, %eax
\tcmpl $5, %eax
\tjne .Lwrong
\tmovl $1, %edi
\tcall print_int
\tjmp .Ldone
.Lwrong:
\tmovl $0, %edi
\tcall print_int
.Ldone:
\tmovl $0, %eax
\tretq
"""
        assert Machine(parse_program(text)).run().output == ("1",)

    def test_setcc(self):
        assert result_of("""
            movq $3, %rax
            cmpq $5, %rax
            setl %al
            movzbl %al, %eax
        """) == 1


class TestStack:
    def test_push_pop(self):
        assert result_of("""
            movq $77, %rcx
            pushq %rcx
            popq %rax
        """) == 77

    def test_push_adjusts_rsp_by_8(self):
        assert result_of("""
            movq %rsp, %rcx
            pushq %rax
            movq %rsp, %rax
            popq %rdx
            subq %rax, %rcx
            movq %rcx, %rax
        """) == 8


class TestVector:
    def test_movq_to_xmm_zeroes_upper_quadword(self):
        assert result_of("""
            movq $-1, %rcx
            movq %rcx, %xmm0
            pinsrq $0, %rcx, %xmm1
            pextrq $1, %xmm0, %rax
        """) == 0

    def test_pinsrq_pextrq_lanes(self):
        assert result_of("""
            movq $11, %rcx
            movq $22, %rdx
            movq %rcx, %xmm0
            pinsrq $1, %rdx, %xmm0
            pextrq $1, %xmm0, %rax
        """) == 22

    def test_vinserti128_upper_lane(self):
        assert result_of("""
            movq $5, %rcx
            movq %rcx, %xmm1
            vinserti128 $1, %xmm1, %ymm0, %ymm0
            pextrq $0, %xmm0, %rax
        """) == 0  # low lane of ymm0 untouched

    def test_vpxor_and_vptest_equal(self):
        text = """\t.globl main
main:
\tmovq $9, %rcx
\tmovq %rcx, %xmm0
\tmovq %rcx, %xmm1
\tvpxor %ymm1, %ymm0, %ymm2
\tvptest %ymm2, %ymm2
\tjne .Lbad
\tmovl $1, %edi
\tcall print_int
\tmovl $0, %eax
\tretq
.Lbad:
\tmovl $0, %edi
\tcall print_int
\tmovl $0, %eax
\tretq
"""
        assert Machine(parse_program(text)).run().output == ("1",)

    def test_vptest_detects_difference(self):
        text = """\t.globl main
main:
\tmovq $9, %rcx
\tmovq %rcx, %xmm0
\tmovq $10, %rcx
\tmovq %rcx, %xmm1
\tvpxor %ymm1, %ymm0, %ymm2
\tvptest %ymm2, %ymm2
\tjne .Lbad
\tmovl $1, %edi
\tcall print_int
\tmovl $0, %eax
\tretq
.Lbad:
\tmovl $0, %edi
\tcall print_int
\tmovl $0, %eax
\tretq
"""
        assert Machine(parse_program(text)).run().output == ("0",)
