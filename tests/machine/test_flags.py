"""Unit tests for RFLAGS semantics against reference arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.machine.flags import (
    CF_BIT,
    OF_BIT,
    SF_BIT,
    ZF_BIT,
    condition_holds,
    flags_for_add,
    flags_for_result,
    flags_for_sub,
    get_flag,
    pack_flags,
)
from repro.utils.bitops import to_signed, to_unsigned

u32 = st.integers(0, 2 ** 32 - 1)


class TestPackGet:
    def test_pack_positions(self):
        rflags = pack_flags(True, False, True, False, True)
        assert get_flag(rflags, CF_BIT)
        assert get_flag(rflags, ZF_BIT)
        assert get_flag(rflags, OF_BIT)
        assert not get_flag(rflags, SF_BIT)


class TestArithmeticFlags:
    @given(u32, u32)
    def test_add_result_and_carry(self, a, b):
        result, rflags = flags_for_add(a, b, 32)
        assert result == to_unsigned(a + b, 32)
        assert get_flag(rflags, CF_BIT) == (a + b >= 2 ** 32)

    @given(u32, u32)
    def test_add_overflow_matches_signed(self, a, b):
        result, rflags = flags_for_add(a, b, 32)
        true_sum = to_signed(a, 32) + to_signed(b, 32)
        assert get_flag(rflags, OF_BIT) == not_in_range(true_sum)

    @given(u32, u32)
    def test_sub_zero_flag(self, a, b):
        _, rflags = flags_for_sub(a, b, 32)
        assert get_flag(rflags, ZF_BIT) == (a == b)

    @given(u32, u32)
    def test_sub_borrow(self, a, b):
        _, rflags = flags_for_sub(a, b, 32)
        assert get_flag(rflags, CF_BIT) == (a < b)

    @given(u32)
    def test_logic_flags(self, a):
        rflags = flags_for_result(a, 32)
        assert get_flag(rflags, ZF_BIT) == (a == 0)
        assert get_flag(rflags, SF_BIT) == bool(a >> 31)
        assert not get_flag(rflags, CF_BIT)
        assert not get_flag(rflags, OF_BIT)


def not_in_range(value: int) -> bool:
    return not -(2 ** 31) <= value < 2 ** 31


class TestConditions:
    @given(u32, u32)
    def test_signed_comparisons_after_cmp(self, a, b):
        """After cmp b, the condition codes must mirror signed compare."""
        _, rflags = flags_for_sub(a, b, 32)
        sa, sb = to_signed(a, 32), to_signed(b, 32)
        assert condition_holds("e", rflags) == (sa == sb)
        assert condition_holds("ne", rflags) == (sa != sb)
        assert condition_holds("l", rflags) == (sa < sb)
        assert condition_holds("le", rflags) == (sa <= sb)
        assert condition_holds("g", rflags) == (sa > sb)
        assert condition_holds("ge", rflags) == (sa >= sb)

    @given(u32, u32)
    def test_unsigned_comparisons_after_cmp(self, a, b):
        _, rflags = flags_for_sub(a, b, 32)
        assert condition_holds("b", rflags) == (a < b)
        assert condition_holds("ae", rflags) == (a >= b)
        assert condition_holds("be", rflags) == (a <= b)
        assert condition_holds("a", rflags) == (a > b)

    @given(u32)
    def test_sign_conditions(self, a):
        rflags = flags_for_result(a, 32)
        assert condition_holds("s", rflags) == bool(a >> 31)
        assert condition_holds("ns", rflags) == (not a >> 31)

    def test_unknown_condition_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            condition_holds("xx", 0)
