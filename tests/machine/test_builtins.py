"""Builtin runtime tests (malloc, printing, LCG, exit, detect)."""

import pytest

from repro.asm.parser import parse_program
from repro.errors import MachineFault
from repro.machine.builtins import builtin_names, is_builtin
from repro.machine.cpu import Machine
from repro.machine.memory import MemoryLayout


def _program(body: str) -> str:
    return "\t.globl main\nmain:\n" + body + "\tmovl $0, %eax\n\tretq\n"


class TestRegistry:
    def test_expected_builtins_present(self):
        names = set(builtin_names())
        assert {"malloc", "free", "print_int", "print_long", "srand",
                "rand_next", "exit", "__eddi_detect"} == names

    def test_is_builtin(self):
        assert is_builtin("malloc")
        assert not is_builtin("printf")


class TestMalloc:
    def test_returns_16_aligned_pointers(self):
        text = _program(
            "\tmovl $7, %edi\n\tcall malloc\n"
            "\tandq $15, %rax\n\tmovq %rax, %rdi\n\tcall print_long\n"
        )
        result = Machine(parse_program(text)).run()
        assert result.output == ("0",)

    def test_zero_size_allocations_distinct(self):
        text = _program(
            "\tmovl $0, %edi\n\tcall malloc\n\tmovq %rax, %rcx\n"
            "\tmovl $0, %edi\n\tcall malloc\n"
            "\tsubq %rcx, %rax\n\tmovq %rax, %rdi\n\tcall print_long\n"
        )
        result = Machine(parse_program(text)).run()
        assert int(result.output[0]) >= 16

    def test_heap_exhaustion_faults(self):
        layout = MemoryLayout(heap_size=1024)
        text = _program(
            "\tmovl $4096, %edi\n\tcall malloc\n"
        )
        with pytest.raises(MachineFault):
            Machine(parse_program(text), layout=layout).run()

    def test_free_is_noop(self):
        text = _program(
            "\tmovl $32, %edi\n\tcall malloc\n"
            "\tmovq %rax, %rdi\n\tcall free\n"
        )
        Machine(parse_program(text)).run()  # must not raise


class TestPrinting:
    def test_print_int_sign_extends_low_32(self):
        text = _program(
            "\tmovq $-1, %rdi\n\tcall print_int\n"
        )
        assert Machine(parse_program(text)).run().output == ("-1",)

    def test_print_long_full_width(self):
        text = _program(
            "\tmovq $1, %rdi\n\tshlq $40, %rdi\n\tcall print_long\n"
        )
        assert Machine(parse_program(text)).run().output == (str(1 << 40),)


class TestRandom:
    def test_srand_resets_stream(self):
        text = _program(
            "\tmovl $5, %edi\n\tcall srand\n\tcall rand_next\n"
            "\tmovq %rax, %rcx\n"
            "\tmovl $5, %edi\n\tcall srand\n\tcall rand_next\n"
            "\tsubq %rcx, %rax\n\tmovq %rax, %rdi\n\tcall print_long\n"
        )
        assert Machine(parse_program(text)).run().output == ("0",)

    def test_rand_next_is_31_bit_nonnegative(self):
        text = _program(
            "\tcall rand_next\n\tsarq $31, %rax\n"
            "\tmovq %rax, %rdi\n\tcall print_long\n"
        )
        assert Machine(parse_program(text)).run().output == ("0",)

    def test_default_seed_matches_ir_interpreter(self):
        """The machine and the IR interpreter must share the LCG, so raw
        outputs agree across layers for rand-driven workloads."""
        from repro.backend import compile_module
        from repro.ir.interp import IRInterpreter
        from repro.minic import compile_to_ir

        source = """
        int main() {
            print_int(rand_next() % 9973);
            return 0;
        }
        """
        module = compile_to_ir(source)
        assert IRInterpreter(module).run().output == \
            Machine(compile_module(module)).run().output
