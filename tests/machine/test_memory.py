"""Unit tests for segmented memory."""

import pytest

from repro.errors import SegmentationFault
from repro.machine.memory import Memory, MemoryLayout


@pytest.fixture
def memory():
    return Memory()


class TestReadWrite:
    def test_roundtrip_u64(self, memory):
        addr = memory.layout.heap_base
        memory.write_uint(addr, 0x1122334455667788, 8)
        assert memory.read_uint(addr, 8) == 0x1122334455667788

    def test_little_endian(self, memory):
        addr = memory.layout.heap_base
        memory.write_uint(addr, 0x0102, 2)
        assert memory.read_uint(addr, 1) == 0x02
        assert memory.read_uint(addr + 1, 1) == 0x01

    def test_truncates_to_size(self, memory):
        addr = memory.layout.heap_base
        memory.write_uint(addr, 0x1FF, 1)
        assert memory.read_uint(addr, 1) == 0xFF

    def test_zero_initialized(self, memory):
        assert memory.read_uint(memory.layout.stack_base, 8) == 0

    def test_bytes_interface(self, memory):
        addr = memory.layout.globals_base
        memory.write_bytes(addr, b"hello")
        assert memory.read_bytes(addr, 5) == b"hello"


class TestSegmentation:
    def test_null_page_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read_uint(0, 8)

    def test_gap_between_segments_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read_uint(memory.layout.heap_base - 16, 8)

    def test_straddling_end_of_segment_faults(self, memory):
        end = memory.layout.heap_base + memory.layout.heap_size
        with pytest.raises(SegmentationFault):
            memory.read_uint(end - 4, 8)

    def test_stack_segment_accessible(self, memory):
        memory.write_uint(memory.layout.stack_top - 8, 1, 8)

    def test_write_outside_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.write_uint(0xDEAD_BEEF_0000, 1, 8)


class TestLayout:
    def test_stack_base_derived(self):
        layout = MemoryLayout()
        assert layout.stack_base == layout.stack_top - layout.stack_size

    def test_custom_layout(self):
        layout = MemoryLayout(heap_size=4096)
        memory = Memory(layout)
        memory.write_uint(layout.heap_base + 4088, 1, 8)
        with pytest.raises(SegmentationFault):
            memory.write_uint(layout.heap_base + 4096, 1, 8)
