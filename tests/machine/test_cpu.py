"""CPU loop tests: calls, exits, budgets, fault hooks, builtins."""

import pytest

from repro.asm.parser import parse_program
from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    MachineFault,
)
from repro.machine.cpu import Machine

CALL_PROGRAM = """\t.globl add2
add2:
\tleaq 2(%rdi), %rax
\tretq
\t.globl main
main:
\tmovl $40, %edi
\tcall add2
\tmovq %rax, %rdi
\tcall print_long
\tmovl $7, %eax
\tretq
"""

LOOP_FOREVER = """\t.globl main
main:
.Lspin:
\tjmp .Lspin
"""


class TestCallsAndReturns:
    def test_cross_function_call(self):
        result = Machine(parse_program(CALL_PROGRAM)).run()
        assert result.output == ("42",)

    def test_exit_code_from_eax(self):
        result = Machine(parse_program(CALL_PROGRAM)).run()
        assert result.exit_code == 7

    def test_entry_function_selectable(self):
        result = Machine(parse_program(CALL_PROGRAM)).run(
            function="add2", args=(10,)
        )
        assert result.exit_code == 12

    def test_unknown_entry_rejected(self):
        with pytest.raises(MachineFault):
            Machine(parse_program(CALL_PROGRAM)).run(function="nope")

    def test_recursion(self):
        text = """\t.globl fact
fact:
\tcmpq $1, %rdi
\tjg .Lrec
\tmovq $1, %rax
\tretq
.Lrec:
\tpushq %rdi
\tleaq -1(%rdi), %rdi
\tcall fact
\tpopq %rdi
\timulq %rdi, %rax
\tretq
\t.globl main
main:
\tmovq $6, %rdi
\tcall fact
\tmovq %rax, %rdi
\tcall print_long
\tmovl $0, %eax
\tretq
"""
        assert Machine(parse_program(text)).run().output == ("720",)


class TestBuiltins:
    def test_malloc_returns_heap_pointers(self):
        text = """\t.globl main
main:
\tmovl $64, %edi
\tcall malloc
\tmovq %rax, %rcx
\tmovl $64, %edi
\tcall malloc
\tsubq %rcx, %rax
\tmovq %rax, %rdi
\tcall print_long
\tmovl $0, %eax
\tretq
"""
        result = Machine(parse_program(text)).run()
        assert int(result.output[0]) >= 64  # second allocation is disjoint

    def test_rand_is_deterministic_per_run(self):
        text = """\t.globl main
main:
\tmovl $9, %edi
\tcall srand
\tcall rand_next
\tmovq %rax, %rdi
\tcall print_long
\tmovl $0, %eax
\tretq
"""
        machine = Machine(parse_program(text))
        assert machine.run().output == machine.run().output

    def test_exit_builtin_stops_execution(self):
        text = """\t.globl main
main:
\tmovl $3, %edi
\tcall exit
\tmovl $9, %edi
\tcall print_int
\tmovl $0, %eax
\tretq
"""
        result = Machine(parse_program(text)).run()
        assert result.exit_code == 3
        assert result.output == ()

    def test_detect_builtin_raises(self):
        text = """\t.globl main
main:
\tcall __eddi_detect
\tretq
"""
        with pytest.raises(DetectionExit):
            Machine(parse_program(text)).run()


class TestLimitsAndFaults:
    def test_instruction_budget(self):
        machine = Machine(parse_program(LOOP_FOREVER))
        with pytest.raises(ExecutionLimitExceeded):
            machine.run(max_instructions=1000)

    def test_wild_memory_access_faults(self):
        text = """\t.globl main
main:
\tmovq $0, %rax
\tmovq (%rax), %rcx
\tretq
"""
        with pytest.raises(MachineFault):
            Machine(parse_program(text)).run()

    def test_corrupted_return_address_faults(self):
        text = """\t.globl main
main:
\tpushq %rax
\tretq
"""
        # rax is 0: returning to instruction index 0 loops; budget catches
        # it, or an out-of-range value faults. Either is a crash/timeout.
        with pytest.raises((MachineFault, ExecutionLimitExceeded)):
            Machine(parse_program(text)).run(max_instructions=100)


class TestRunBookkeeping:
    def test_fault_sites_counted(self):
        result = Machine(parse_program(CALL_PROGRAM)).run()
        # leaq, movl, movq, movl(eax) have register dests; calls/ret do not.
        assert result.fault_sites == 4

    def test_dynamic_instructions_counted(self):
        result = Machine(parse_program(CALL_PROGRAM)).run()
        # movl, call, leaq, retq, movq, call, movl, retq
        assert result.dynamic_instructions == 8

    def test_fault_hook_called_per_site(self):
        seen = []

        def hook(machine, instr, site):
            seen.append((site, instr.mnemonic))

        Machine(parse_program(CALL_PROGRAM)).run(fault_hook=hook)
        assert [s for s, _ in seen] == [0, 1, 2, 3]

    def test_runs_are_isolated(self):
        machine = Machine(parse_program(CALL_PROGRAM))
        first = machine.run()
        second = machine.run()
        assert first.output == second.output
        assert first.exit_code == second.exit_code

    def test_cycles_none_without_timing(self):
        assert Machine(parse_program(CALL_PROGRAM)).run().cycles is None
