"""Timing-model tests: port classification, latency, dependence stalls."""

from repro.asm.instructions import ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.parser import parse_program
from repro.asm.registers import get_register
from repro.machine.cpu import Machine
from repro.machine.timing import Port, TimingConfig, TimingModel, latency_of, port_of


def _reg(name):
    return Reg(get_register(name))


def _mem(disp=-8):
    return Mem(disp=disp, base=get_register("rbp"))


class TestPortClassification:
    def test_scalar_alu_is_int(self):
        assert port_of(ins("addq", Imm(1), _reg("rax"))) is Port.INT

    def test_load_port(self):
        assert port_of(ins("movq", _mem(), _reg("rax"))) is Port.LOAD

    def test_store_port(self):
        assert port_of(ins("movq", _reg("rax"), _mem())) is Port.STORE

    def test_branch_port(self):
        assert port_of(ins("jmp", LabelRef("x"))) is Port.BRANCH
        assert port_of(ins("call", LabelRef("f"))) is Port.BRANCH

    def test_vector_port(self):
        assert port_of(ins("movq", _reg("rax"), _reg("xmm0"))) is Port.VEC
        assert port_of(ins("vpxor", _reg("ymm0"), _reg("ymm1"),
                           _reg("ymm2"))) is Port.VEC

    def test_push_pop_ports(self):
        assert port_of(ins("pushq", _reg("rax"))) is Port.STORE
        assert port_of(ins("popq", _reg("rax"))) is Port.LOAD

    def test_lea_is_int(self):
        assert port_of(ins("leaq", _mem(), _reg("rax"))) is Port.INT


class TestLatency:
    def test_load_latency(self):
        config = TimingConfig()
        instr = ins("movq", _mem(), _reg("rax"))
        assert latency_of(instr, config) == config.latency_load

    def test_lea_is_not_a_load(self):
        config = TimingConfig()
        instr = ins("leaq", _mem(), _reg("rax"))
        assert latency_of(instr, config) == config.latency_lea

    def test_idiv_slowest(self):
        config = TimingConfig()
        assert latency_of(ins("idivl", _reg("ecx")), config) == config.latency_idiv

    def test_imul_latency(self):
        config = TimingConfig()
        instr = ins("imulq", _reg("rcx"), _reg("rax"))
        assert latency_of(instr, config) == config.latency_imul


class TestModelBehaviour:
    def test_dependent_chain_slower_than_independent(self):
        config = TimingConfig()
        dependent = TimingModel(config)
        for _ in range(20):
            dependent.observe(ins("addq", Imm(1), _reg("rax")), [], [], False)
        independent = TimingModel(config)
        regs = ["rax", "rbx", "rcx", "rdx"]
        for i in range(20):
            independent.observe(ins("addq", Imm(1), _reg(regs[i % 4])),
                                [], [], False)
        assert dependent.cycles > independent.cycles

    def test_store_load_forwarding_dependency(self):
        config = TimingConfig()
        model = TimingModel(config)
        model.observe(ins("movq", _reg("rax"), _mem()), [], [100], False)
        model.observe(ins("movq", _mem(), _reg("rbx")), [100], [], False)
        with_dep = model.cycles
        model2 = TimingModel(config)
        model2.observe(ins("movq", _reg("rax"), _mem()), [], [100], False)
        model2.observe(ins("movq", _mem(), _reg("rbx")), [200], [], False)
        assert with_dep > model2.cycles

    def test_taken_branch_penalty(self):
        config = TimingConfig()
        taken = TimingModel(config)
        for _ in range(10):
            taken.observe(ins("jmp", LabelRef("x")), [], [], True)
        not_taken = TimingModel(config)
        for _ in range(10):
            not_taken.observe(ins("jne", LabelRef("x")), [], [], False)
        assert taken.cycles > not_taken.cycles

    def test_branch_port_serializes(self):
        config = TimingConfig()
        model = TimingModel(config)
        for _ in range(16):
            model.observe(ins("jne", LabelRef("x")), [], [], False)
        # One branch unit: at least one branch per cycle.
        assert model.cycles >= 15

    def test_vector_work_overlaps_scalar(self):
        """The paper's core claim: VEC uops ride along nearly for free."""
        config = TimingConfig()
        scalar_only = TimingModel(config)
        mixed = TimingModel(config)
        for i in range(40):
            scalar_only.observe(ins("addq", Imm(1), _reg("rax")), [], [], False)
            mixed.observe(ins("addq", Imm(1), _reg("rax")), [], [], False)
            mixed.observe(ins("movq", _reg("rbx"), _reg("xmm0")), [], [], False)
        assert mixed.cycles <= scalar_only.cycles * 1.3

    def test_rob_limits_runahead(self):
        small = TimingConfig(rob_size=4)
        large = TimingConfig(rob_size=512)
        def run(config):
            model = TimingModel(config)
            # One long-latency op then many independent cheap ops.
            model.observe(ins("idivl", _reg("ecx")), [], [], False)
            for i in range(64):
                model.observe(ins("addq", Imm(1), _reg("rbx")), [], [], False)
            return model.cycles
        assert run(small) > run(large)

    def test_granules(self):
        assert TimingModel.granules(0, 8) == [0]
        assert TimingModel.granules(4, 8) == [0, 1]
        assert TimingModel.granules(8, 4) == [1]


class TestEndToEndDeterminism:
    def test_cycles_deterministic(self, tiny_build):
        machine = Machine(tiny_build["raw"].asm)
        a = machine.run(timing=TimingConfig()).cycles
        b = machine.run(timing=TimingConfig()).cycles
        assert a == b and a > 0

    def test_cycles_scale_with_work(self):
        text = """\t.globl main
main:
\tmovq $0, %rax
\tmovq $0, %rcx
.Lloop:
\taddq $1, %rax
\taddq $1, %rcx
\tcmpq $NNN, %rcx
\tjne .Lloop
\tmovl $0, %eax
\tretq
"""
        short = Machine(parse_program(text.replace("NNN", "10")))
        long = Machine(parse_program(text.replace("NNN", "100")))
        assert long.run(timing=TimingConfig()).cycles > \
            short.run(timing=TimingConfig()).cycles * 5
