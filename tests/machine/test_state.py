"""Unit tests for the register file's sub-register write rules."""

from repro.asm.registers import get_register
from repro.machine.state import RegisterFile


class TestGprWrites:
    def test_64bit_replaces(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xFFFF_FFFF_FFFF_FFFF)
        regs.write(get_register("rax"), 1)
        assert regs.read(get_register("rax")) == 1

    def test_32bit_zero_extends(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xFFFF_FFFF_FFFF_FFFF)
        regs.write(get_register("eax"), 0x1234)
        assert regs.read(get_register("rax")) == 0x1234  # upper cleared

    def test_16bit_merges(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xAAAA_BBBB_CCCC_DDDD)
        regs.write(get_register("ax"), 0x1111)
        assert regs.read(get_register("rax")) == 0xAAAA_BBBB_CCCC_1111

    def test_8bit_merges(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xAAAA_BBBB_CCCC_DDDD)
        regs.write(get_register("al"), 0x22)
        assert regs.read(get_register("rax")) == 0xAAAA_BBBB_CCCC_DD22

    def test_read_view_masks(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0x1122_3344_5566_7788)
        assert regs.read(get_register("eax")) == 0x5566_7788
        assert regs.read(get_register("al")) == 0x88


class TestVectorWrites:
    def test_xmm_preserves_upper_lane(self):
        regs = RegisterFile()
        regs.write(get_register("ymm0"), (1 << 255) | 7)
        regs.write(get_register("xmm0"), 42)
        value = regs.read(get_register("ymm0"))
        assert value & ((1 << 128) - 1) == 42
        assert value >> 255 == 1  # upper lane preserved

    def test_ymm_replaces_all(self):
        regs = RegisterFile()
        regs.write(get_register("ymm1"), (1 << 255) | 7)
        regs.write(get_register("ymm1"), 5)
        assert regs.read(get_register("ymm1")) == 5

    def test_xmm_read_masks_to_128(self):
        regs = RegisterFile()
        regs.write(get_register("ymm2"), (123 << 128) | 9)
        assert regs.read(get_register("xmm2")) == 9


class TestFlip:
    def test_flip_gpr_bit(self):
        regs = RegisterFile()
        regs.write(get_register("rbx"), 0)
        regs.flip(get_register("rbx"), 5)
        assert regs.read(get_register("rbx")) == 32

    def test_flip_subregister_respects_width(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xFF00)
        regs.flip(get_register("al"), 0)
        assert regs.read(get_register("rax")) == 0xFF01

    def test_flip_flags(self):
        from repro.asm.registers import FLAGS

        regs = RegisterFile()
        regs.flip(FLAGS, 6)
        assert regs.rflags == 64

    def test_flip_32bit_view_clears_upper(self):
        # Flipping a bit in a 32-bit view rewrites via the 32-bit rule.
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xFFFF_FFFF_0000_0000)
        regs.flip(get_register("eax"), 0)
        assert regs.read(get_register("rax")) == 1


class TestSnapshot:
    def test_snapshot_contains_all_roots(self):
        snap = RegisterFile().snapshot()
        assert "rax" in snap and "ymm15" in snap and "rflags" in snap

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        regs.write(get_register("rax"), 9)
        assert snap["rax"] == 0
