"""Translated engine vs reference handlers: bit-identity differential.

The pre-translation engine (:mod:`repro.machine.translate`) is pure
execution strategy — for any program, the reference handler loop is the
semantic oracle and the translated engine must be indistinguishable from
it: same :class:`RunResult`, same fault-site numbering, same fault-hook
delivery (including ``executed_at_site``), same snapshots, and the same
faults/detections with the same messages when a bit is flipped mid-run.

The same contract covers the superblock-fused engine (``engine="fused"``),
which additionally elides provably-dead flag computation inside blocks —
every parity assertion here runs over all entries of ``ENGINES``.
"""

import pytest

from repro.errors import EngineConfigError, MachineError, MachineFault
from repro.fuzz.generator import generate_program
from repro.machine.cpu import ENGINE_ENV_VAR, ENGINES, Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants
from repro.workloads.registry import all_workloads, get_workload

#: Fixed fuzz corpus — same seeds the checkpoint-campaign suite pins.
FUZZ_SEEDS = (3, 17, 58)
#: Variants that matter for engine parity: unprotected and fully protected.
VARIANTS = ("raw", "ferrum")

WORKLOAD_NAMES = tuple(spec.name for spec in all_workloads())


@pytest.fixture(scope="module")
def workload_asm():
    out = {}
    for name in WORKLOAD_NAMES:
        build = build_variants(get_workload(name).source_fn(), names=VARIANTS)
        out[name] = {variant: build[variant].asm for variant in VARIANTS}
    return out


@pytest.fixture(scope="module")
def fuzz_asm():
    return {
        seed: {
            variant: build[variant].asm for variant in VARIANTS
        }
        for seed, build in (
            (s, build_variants(generate_program(s), names=VARIANTS))
            for s in FUZZ_SEEDS
        )
    }


def _run_all(program, **kwargs):
    return {
        engine: Machine(program, engine=engine).run(**kwargs)
        for engine in ENGINES
    }


def _all_equal(values):
    values = list(values)
    return all(value == values[0] for value in values)


class TestCleanRunIdentity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workloads_bit_identical(self, workload_asm, name, variant):
        results = _run_all(workload_asm[name][variant])
        assert _all_equal(results.values())

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_corpus_bit_identical(self, fuzz_asm, seed, variant):
        results = _run_all(fuzz_asm[seed][variant])
        assert _all_equal(results.values())

    def test_budget_exhaustion_identical(self, workload_asm):
        program = workload_asm[WORKLOAD_NAMES[0]]["raw"]
        errors = []
        for engine in ENGINES:
            with pytest.raises(MachineError) as info:
                Machine(program, engine=engine).run(max_instructions=500)
            errors.append((type(info.value), str(info.value)))
        assert _all_equal(errors)


class TestFaultHookProtocol:
    def test_hook_trace_identical(self, fuzz_asm):
        """Every site ordinal, instruction, and ``executed_at_site`` the
        hook observes must match between engines."""
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        traces = {}
        for engine in ENGINES:
            trace = []
            machine = Machine(program, engine=engine)

            def hook(m, instr, site, trace=trace, machine=machine):
                assert m is machine
                trace.append((site, m.executed_at_site, str(instr)))

            machine.run(fault_hook=hook)
            traces[engine] = trace
        assert _all_equal(traces.values())
        assert traces["translated"]  # the protocol actually fired

    def test_fault_at_delivers_single_site(self, fuzz_asm):
        program = fuzz_asm[FUZZ_SEEDS[1]]["raw"]
        for target in (0, 5, 40):
            hits = {}
            for engine in ENGINES:
                sites = []
                Machine(program, engine=engine).run(
                    fault_hook=lambda m, i, s, sites=sites: sites.append(s),
                    fault_at=target,
                )
                hits[engine] = sites
            assert _all_equal(hits.values())
            assert hits["translated"] == [target]

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_injected_flips_identical(self, fuzz_asm, variant):
        """Flipping a destination-register bit at a sampled site must yield
        the same outcome — same result, or same fault type and message —
        under both engines (detections included for protected variants)."""
        program = fuzz_asm[FUZZ_SEEDS[2]][variant]
        golden = Machine(program).run()
        budget = golden.dynamic_instructions * 6
        step = max(1, golden.fault_sites // 17)
        for site in range(0, golden.fault_sites, step):
            outcomes = []
            for engine in ENGINES:
                machine = Machine(program, engine=engine)

                def hook(m, instr, s):
                    dest = instr.dest_registers()
                    m.registers.flip(dest[0], 3)

                try:
                    result = machine.run(fault_hook=hook, fault_at=site,
                                         max_instructions=budget)
                    outcomes.append(("ok", result))
                except MachineError as exc:
                    outcomes.append((type(exc).__name__, str(exc)))
            assert _all_equal(outcomes), f"divergence at site {site}"


class TestSnapshotIdentity:
    def test_run_to_site_snapshots_identical(self, workload_asm):
        program = workload_asm[WORKLOAD_NAMES[0]]["ferrum"]
        for target in (1, 100, 2000):
            snaps = [
                Machine(program, engine=engine).run_to_site(target)
                for engine in ENGINES
            ]
            assert _all_equal(snaps)

    def test_cross_engine_resume(self, workload_asm):
        """A snapshot captured under one engine must resume bit-identically
        under the other — checkpoints are engine-neutral."""
        program = workload_asm[WORKLOAD_NAMES[1]]["raw"]
        golden = Machine(program).run()
        for snap_engine, resume_engine in (
            ("reference", "translated"),
            ("translated", "reference"),
            ("reference", "fused"),
            ("fused", "reference"),
            ("fused", "translated"),
        ):
            snap = Machine(program, engine=snap_engine).run_to_site(150)
            resumed = Machine(program, engine=resume_engine).run(
                resume_from=snap
            )
            assert resumed == golden

    def test_chained_run_to_site_identical(self, fuzz_asm):
        program = fuzz_asm[FUZZ_SEEDS[0]]["ferrum"]
        chained = {}
        for engine in ENGINES:
            machine = Machine(program, engine=engine)
            snap = machine.run_to_site(20)
            snap = machine.run_to_site(90, resume_from=snap)
            chained[engine] = snap
        assert _all_equal(chained.values())


class TestEngineSelection:
    def test_invalid_engine_rejected(self, fuzz_asm):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        with pytest.raises(MachineFault):
            Machine(program, engine="warp")

    def test_env_var_selects_engine(self, fuzz_asm, monkeypatch):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert Machine(program).engine == "reference"
        monkeypatch.setenv(ENGINE_ENV_VAR, "translated")
        assert Machine(program).engine == "translated"
        monkeypatch.setenv(ENGINE_ENV_VAR, "fused")
        assert Machine(program).engine == "fused"
        monkeypatch.delenv(ENGINE_ENV_VAR)
        assert Machine(program).engine == "translated"

    def test_invalid_env_engine_rejected(self, fuzz_asm, monkeypatch):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        monkeypatch.setenv(ENGINE_ENV_VAR, "quantum")
        with pytest.raises(MachineFault):
            Machine(program)

    def test_explicit_engine_overrides_env(self, fuzz_asm, monkeypatch):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert Machine(program, engine="translated").engine == "translated"


class TestTimingRuns:
    def test_timing_matches_reference(self, workload_asm):
        """Timing-model observation runs on the reference loop regardless of
        engine; cycle counts must be engine-independent."""
        program = workload_asm[WORKLOAD_NAMES[0]]["raw"]
        results = [
            Machine(program, engine=engine).run(timing=TimingConfig())
            for engine in ENGINES
        ]
        assert _all_equal(results)
        assert results[0].cycles is not None


class TestEngineConfigError:
    def test_is_value_error_and_machine_fault(self, fuzz_asm):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        with pytest.raises(ValueError) as info:
            Machine(program, engine="warp")
        assert isinstance(info.value, EngineConfigError)
        assert isinstance(info.value, MachineFault)

    def test_message_lists_valid_engines(self, fuzz_asm):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        with pytest.raises(EngineConfigError) as info:
            Machine(program, engine="warp")
        message = str(info.value)
        assert "warp" in message
        for engine in ENGINES:
            assert engine in message

    def test_env_var_error_lists_valid_engines(self, fuzz_asm, monkeypatch):
        program = fuzz_asm[FUZZ_SEEDS[0]]["raw"]
        monkeypatch.setenv(ENGINE_ENV_VAR, "quantum")
        with pytest.raises(EngineConfigError) as info:
            Machine(program)
        assert "quantum" in str(info.value)


class TestFusedSuperblocks:
    """Structure and behavior specific to the superblock-fused engine."""

    def test_blocks_actually_fuse(self, workload_asm):
        from repro.machine.translate import translate_fused

        machine = Machine(workload_asm[WORKLOAD_NAMES[0]]["raw"],
                          engine="fused")
        fused = translate_fused(machine)
        lengths = [length for length in fused.fused_len if length >= 2]
        assert lengths, "no superblock of length >= 2 was built"
        # -O0-style straight-line code should fuse the bulk of the program.
        assert sum(lengths) > len(machine._code) // 2

    def test_leaders_never_mid_block(self, workload_asm):
        """No fused block may extend across another block's leader — a jump
        into the middle of a fused body would skip its preceding effects."""
        from repro.machine.translate import translate_fused

        machine = Machine(workload_asm[WORKLOAD_NAMES[1]]["ferrum"],
                          engine="fused")
        fused = translate_fused(machine)
        starts = [pc for pc, step in enumerate(fused.fused_steps) if step]
        spans = {pc: fused.fused_len[pc] for pc in starts}
        jump_targets = {t for t in machine._jump_pc if t >= 0}
        jump_targets.update(machine._entry.values())
        jump_targets.update(t for t in machine._call_entry_pc if t >= 0)
        for start, length in spans.items():
            for interior in range(start + 1, start + length - 1):
                assert interior not in jump_targets, (
                    f"jump target {interior} inside block "
                    f"[{start}, {start + length})"
                )

    def test_budget_expires_mid_block(self, workload_asm):
        """Budgets that land inside a fused block must still halt at the
        exact instruction, with the reference's counters and message."""
        program = workload_asm[WORKLOAD_NAMES[0]]["raw"]
        golden = Machine(program).run()
        for budget in (3, 11, golden.dynamic_instructions // 2 + 1):
            observed = []
            for engine in ENGINES:
                machine = Machine(program, engine=engine)
                with pytest.raises(MachineError) as info:
                    machine.run(max_instructions=budget)
                observed.append((type(info.value), str(info.value),
                                 machine.halt_executed, machine.halt_sites))
            assert _all_equal(observed), f"divergence at budget {budget}"

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fault_mid_run_counters_identical(self, fuzz_asm, variant):
        """A crash inside a fused block must stamp halt_executed and
        halt_sites exactly as the reference engine does."""
        program = fuzz_asm[FUZZ_SEEDS[1]][variant]
        golden = Machine(program).run()
        step = max(1, golden.fault_sites // 23)
        budget = golden.dynamic_instructions * 6
        for site in range(0, golden.fault_sites, step):
            stamps = []
            for engine in ENGINES:
                machine = Machine(program, engine=engine)

                def hook(m, instr, s):
                    dest = instr.dest_registers()
                    m.registers.flip(dest[0], dest[0].width - 1)

                try:
                    machine.run(fault_hook=hook, fault_at=site,
                                max_instructions=budget)
                    stamps.append(("ok",))
                except MachineError as exc:
                    stamps.append((type(exc).__name__, str(exc),
                                   machine.halt_executed,
                                   machine.halt_sites))
            assert _all_equal(stamps), f"divergence at site {site}"
