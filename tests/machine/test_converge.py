"""Golden digest trails: determinism, soundness plumbing, COW snapshots.

The convergence early-exit contract starts with the trail itself: the
digest trail of one (program, input) unit must be a pure function of the
program's architectural behavior — identical across execution engines,
across processes, and across ``program.copy()`` (trails recorded by the
compose layer and the durable service must key caches identically no
matter which process or engine produced them).
"""

import pytest

from repro.machine.converge import (
    GIVE_UP_AFTER,
    ConvergenceTrail,
    record_trail,
    trail_interval,
)
from repro.machine.cpu import Machine
from repro.machine.memory import Memory, PAGE_SIZE
from repro.machine.state import RegisterFile
from repro.pipeline import build_variants
from repro.workloads import get_workload

ENGINE_NAMES = ("reference", "translated", "fused")


@pytest.fixture(scope="module")
def bfs_program():
    build = build_variants(get_workload("bfs").source(1),
                           names=("raw", "ferrum"))
    return build["ferrum"].asm


@pytest.fixture(scope="module")
def bfs_golden(bfs_program):
    return Machine(bfs_program).run()


class TestTrailDeterminism:
    def test_fingerprint_identical_across_engines(self, bfs_program,
                                                  bfs_golden, monkeypatch):
        fingerprints = set()
        for engine in ENGINE_NAMES:
            monkeypatch.setenv("FERRUM_ENGINE", engine)
            trail = record_trail(bfs_program, bfs_golden)
            fingerprints.add(trail.fingerprint())
        assert len(fingerprints) == 1, (
            f"trail fingerprint differs across engines: {fingerprints}")

    def test_fingerprint_unchanged_by_program_copy(self, bfs_program,
                                                   bfs_golden):
        original = record_trail(bfs_program, bfs_golden)
        copied = record_trail(bfs_program.copy(), bfs_golden)
        assert original.fingerprint() == copied.fingerprint()

    def test_fingerprint_identical_across_processes(self, bfs_program,
                                                    bfs_golden):
        """Object identities (uids, dict order) never leak into the trail:
        a forked child recording the same trail fingerprints identically."""
        from repro.faultinjection.campaign import _fork_context

        context = _fork_context()
        if context is None:
            pytest.skip("fork start method unavailable")
        parent = record_trail(bfs_program, bfs_golden).fingerprint()

        def child(conn):
            trail = record_trail(bfs_program, bfs_golden)
            conn.send(trail.fingerprint())
            conn.close()

        ours, theirs = context.Pipe()
        process = context.Process(target=child, args=(theirs,))
        process.start()
        try:
            assert ours.recv() == parent
        finally:
            process.join()

    def test_trail_totals_match_golden(self, bfs_program, bfs_golden):
        trail = record_trail(bfs_program, bfs_golden)
        assert trail.total_executed == bfs_golden.dynamic_instructions
        assert trail.total_sites == bfs_golden.fault_sites
        assert trail.output == bfs_golden.output
        assert trail.exit_code == bfs_golden.exit_code
        assert all(entry.site == (i + 1) * trail.interval
                   for i, entry in enumerate(trail.entries))

    def test_machine_still_runs_after_recording(self, bfs_program,
                                                bfs_golden):
        """record_trail restores the dirty-page bookkeeping it borrowed:
        the same machine must produce a bit-identical run afterwards."""
        machine = Machine(bfs_program)
        record_trail(bfs_program, bfs_golden, machine=machine)
        rerun = machine.run()
        assert rerun.output == bfs_golden.output
        assert rerun.exit_code == bfs_golden.exit_code
        assert rerun.dynamic_instructions == bfs_golden.dynamic_instructions


class TestTrailShape:
    def test_default_interval(self):
        assert trail_interval(10) == 16          # floor
        assert trail_interval(100_000) == 195    # // 512 dominates

    def test_invalid_interval_rejected(self, bfs_program, bfs_golden):
        with pytest.raises(ValueError):
            record_trail(bfs_program, bfs_golden, interval=0)

    def test_monitor_none_after_last_boundary(self, bfs_program, bfs_golden):
        trail = record_trail(bfs_program, bfs_golden)
        last = trail.entries[-1].site
        assert trail.monitor(last) is None
        assert trail.monitor(trail.total_sites - 1) is None
        monitor = trail.monitor(0)
        assert monitor is not None
        assert monitor.boundaries == trail.entries

    def test_monitor_boundaries_strictly_after_flip(self, bfs_program,
                                                    bfs_golden):
        trail = record_trail(bfs_program, bfs_golden)
        flip = trail.entries[0].site  # exactly on a boundary
        monitor = trail.monitor(flip)
        assert monitor.boundaries[0].site > flip

    def test_give_up_bound_is_finite(self):
        assert 1 <= GIVE_UP_AFTER <= 64

    def test_trail_is_frozen(self, bfs_program, bfs_golden):
        trail = record_trail(bfs_program, bfs_golden)
        assert isinstance(trail, ConvergenceTrail)
        with pytest.raises(AttributeError):
            trail.interval = 1


class TestWriteWatch:
    def test_watch_isolates_new_writes(self):
        memory = Memory()
        base = memory.layout.globals_base
        memory.write_uint(base, 1, 8)
        saved = memory.begin_write_watch()
        assert all(not pages for pages in memory.watched_writes())
        memory.write_uint(base + PAGE_SIZE, 2, 8)
        watched = memory.watched_writes()
        assert any(pages for pages in watched)
        memory.end_write_watch(saved)
        # Both the pre-watch and the watched write are dirty again.
        snap = memory.snapshot()
        flat = {(seg, page) for seg, pages in enumerate(snap.pages)
                for page in pages}
        assert len(flat) >= 2

    def test_end_watch_restores_restore_semantics(self):
        """Dirty sets merged back by end_write_watch must keep
        snapshot/restore exact — restore zero-fills dirty-minus-snapshot
        pages, which only works on complete dirty sets."""
        memory = Memory()
        base = memory.layout.globals_base
        memory.write_uint(base, 0xAA, 8)
        snap = memory.snapshot()
        saved = memory.begin_write_watch()
        memory.write_uint(base + PAGE_SIZE, 0xBB, 8)
        memory.end_write_watch(saved)
        memory.restore(snap)
        assert memory.read_uint(base, 8) == 0xAA
        assert memory.read_uint(base + PAGE_SIZE, 8) == 0

    def test_page_view_is_live(self):
        memory = Memory()
        saved = memory.begin_write_watch()
        memory.write_uint(memory.layout.globals_base, 0x11, 8)
        watched = memory.watched_writes()
        seg = next(i for i, pages in enumerate(watched) if pages)
        page = next(iter(watched[seg]))
        view = memory.page_view(seg, page)
        assert len(view) == PAGE_SIZE
        assert view[0] == 0x11
        memory.end_write_watch(saved)


class TestCopyOnWriteSnapshots:
    def test_repeat_snapshot_returns_cached_object(self):
        regs = RegisterFile()
        first = regs.snapshot_state()
        second = regs.snapshot_state()
        assert first is second
        assert regs.snapshot_copies == 1
        assert regs.snapshot_hits == 1

    def test_write_invalidates_cache(self):
        from repro.asm.registers import get_register

        regs = RegisterFile()
        first = regs.snapshot_state()
        regs.write(get_register("rax"), 7)
        second = regs.snapshot_state()
        assert first is not second
        assert second.gprs["rax"] == 7
        assert regs.snapshot_copies == 2

    def test_flip_invalidates_cache(self):
        from repro.asm.registers import get_register

        regs = RegisterFile()
        first = regs.snapshot_state()
        regs.flip(get_register("rax"), 3)
        assert regs.snapshot_state() is not first

    def test_note_direct_writes_invalidates_cache(self):
        regs = RegisterFile()
        first = regs.snapshot_state()
        regs.note_direct_writes()   # engines mutate _gprs behind our back
        assert regs.snapshot_state() is not first

    def test_restore_seeds_cache(self):
        from repro.asm.registers import get_register

        regs = RegisterFile()
        snap = regs.snapshot_state()
        regs.write(get_register("rbx"), 9)
        regs.restore_state(snap)
        assert regs.snapshot_state() is snap   # restore == known state
        assert regs.read(get_register("rbx")) == 0

    def test_state_equals_matches_snapshot_semantics(self):
        from repro.asm.registers import get_register

        regs = RegisterFile()
        snap = regs.snapshot_state()
        assert regs.state_equals(snap)
        regs.write(get_register("rcx"), 1)
        assert not regs.state_equals(snap)
        regs.restore_state(snap)
        assert regs.state_equals(snap)
