"""Snapshot/restore determinism for the machine layer.

The checkpointed injection engine is only sound if a snapshot round-trip
(snapshot -> arbitrary mutation -> restore) is *exact* and a resumed run is
bit-identical to an uninterrupted one. These tests pin both properties for
every piece of captured state: registers, flags, memory pages, output,
heap cursor, and LCG state.
"""

import pytest

from repro.asm.registers import get_register
from repro.errors import MachineFault
from repro.machine.cpu import Machine
from repro.machine.memory import PAGE_SIZE, Memory
from repro.machine.state import RegisterFile
from repro.minic import compile_to_ir
from repro.backend import compile_module

#: Exercises calls, the heap allocator, the LCG, printing, and flags.
SOURCE = """
int mix(int a, int b) {
    if (a % 2 == 0) { return a * b + 3; }
    return a - b;
}

int main() {
    int* data = malloc(64);
    srand(42);
    for (int i = 0; i < 16; i++) { data[i] = rand_next() % 100; }
    int acc = 0;
    for (int i = 0; i < 16; i++) { acc += mix(data[i], i); }
    print_int(acc);
    print_long(acc * 1000);
    return acc % 7;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_module(compile_to_ir(SOURCE))


class TestRegisterFileSnapshot:
    def test_roundtrip_exact(self):
        regs = RegisterFile()
        regs.write(get_register("rax"), 0xDEAD_BEEF_CAFE_F00D)
        regs.write(get_register("ymm3"), (1 << 200) | 0x55)
        regs.write(get_register("rflags"), 0b1000_1101_0101)
        snap = regs.snapshot_state()
        before = regs.snapshot()

        regs.write(get_register("rax"), 1)
        regs.write(get_register("r15"), 99)
        regs.write(get_register("xmm7"), 0xFFFF)
        regs.write(get_register("rflags"), 0)
        assert regs.snapshot() != before

        regs.restore_state(snap)
        assert regs.snapshot() == before

    def test_snapshot_immune_to_later_writes(self):
        regs = RegisterFile()
        regs.write(get_register("rbx"), 7)
        snap = regs.snapshot_state()
        regs.write(get_register("rbx"), 8)
        assert snap.gprs["rbx"] == 7


class TestMemorySnapshot:
    def test_roundtrip_exact(self):
        mem = Memory()
        heap = mem.layout.heap_base
        mem.write_uint(heap, 0x1122334455667788, 8)
        mem.write_bytes(heap + PAGE_SIZE * 3, b"spanning" * 600)
        snap = mem.snapshot()

        mem.write_uint(heap, 1, 8)
        mem.write_uint(heap + PAGE_SIZE * 10, 0xAB, 1)  # new page post-snapshot
        mem.restore(snap)

        assert mem.read_uint(heap, 8) == 0x1122334455667788
        assert mem.read_bytes(heap + PAGE_SIZE * 3, 8) == b"spanning"
        # The page dirtied only after the snapshot reverts to zero fill.
        assert mem.read_uint(heap + PAGE_SIZE * 10, 1) == 0

    def test_snapshot_is_o_touched_pages(self):
        mem = Memory()
        mem.write_uint(mem.layout.heap_base, 5, 4)
        mem.write_uint(mem.layout.stack_top - 32, 6, 8)
        snap = mem.snapshot()
        touched = sum(len(pages) for pages in snap.pages)
        assert touched <= 3  # not the whole 2+ MiB address space

    def test_page_straddling_write_tracked(self):
        mem = Memory()
        addr = mem.layout.heap_base + PAGE_SIZE - 2
        mem.write_uint(addr, 0xAABBCCDD, 4)
        snap = mem.snapshot()
        mem.write_uint(addr, 0, 4)
        mem.restore(snap)
        assert mem.read_uint(addr, 4) == 0xAABBCCDD

    def test_restore_is_repeatable(self):
        mem = Memory()
        mem.write_uint(mem.layout.heap_base, 77, 8)
        snap = mem.snapshot()
        for scribble in (1, 2, 3):
            mem.write_uint(mem.layout.heap_base + scribble * PAGE_SIZE, 9, 8)
            mem.restore(snap)
            assert mem.read_uint(mem.layout.heap_base, 8) == 77
            assert mem.read_uint(
                mem.layout.heap_base + scribble * PAGE_SIZE, 8) == 0


class TestMachineSnapshot:
    def test_resume_matches_uninterrupted_run(self, program):
        golden = Machine(program).run()
        machine = Machine(program)
        for target in (0, 1, golden.fault_sites // 3, golden.fault_sites - 1):
            snap = machine.run_to_site(target)
            resumed = machine.run(resume_from=snap)
            assert resumed.exit_code == golden.exit_code
            assert resumed.output == golden.output
            assert resumed.dynamic_instructions == golden.dynamic_instructions
            assert resumed.fault_sites == golden.fault_sites

    def test_chained_run_to_site_equals_direct(self, program):
        machine = Machine(program)
        direct = machine.run_to_site(300)
        other = Machine(program)
        cursor = None
        for target in (20, 150, 300):
            cursor = other.run_to_site(target, resume_from=cursor)
        assert cursor == direct

    def test_snapshot_mutate_restore_exact(self, program):
        machine = Machine(program)
        snap = machine.run_to_site(200)
        regs_before = machine.registers.snapshot()
        heap_before = machine.heap_cursor
        lcg_before = machine.lcg_state
        output_before = list(machine.output)
        probe = machine.memory.layout.heap_base

        # Scribble over every category of state the snapshot covers.
        machine.registers.write(get_register("rax"), 0xBAD)
        machine.registers.write(get_register("rflags"), 0xFF)
        machine.memory.write_uint(probe, 0xFFFF_FFFF, 4)
        machine.output.append("garbage")
        machine.heap_cursor += 4096
        machine.lcg_state = 1
        mem_snapshot_value = snap.memory.pages  # untouched by mutation

        machine.restore_snapshot(snap)
        assert machine.registers.snapshot() == regs_before
        assert machine.heap_cursor == heap_before
        assert machine.lcg_state == lcg_before
        assert machine.output == output_before
        assert snap.memory.pages == mem_snapshot_value
        resumed = machine.run(resume_from=snap)
        assert resumed.output == Machine(program).run().output

    def test_restore_then_rerun_many_times(self, program):
        machine = Machine(program)
        snap = machine.run_to_site(100)
        results = [machine.run(resume_from=snap) for _ in range(3)]
        assert len({(r.exit_code, r.output, r.dynamic_instructions,
                     r.fault_sites) for r in results}) == 1

    def test_counters_resume_cumulatively(self, program):
        machine = Machine(program)
        snap = machine.run_to_site(50)
        assert snap.sites == 50
        assert snap.executed >= 50
        resumed = machine.run(resume_from=snap)
        assert resumed.fault_sites == Machine(program).run().fault_sites

    def test_cannot_run_backwards(self, program):
        machine = Machine(program)
        snap = machine.run_to_site(100)
        with pytest.raises(MachineFault):
            machine.run_to_site(40, resume_from=snap)

    def test_target_past_end_raises(self, program):
        golden = Machine(program).run()
        with pytest.raises(MachineFault):
            Machine(program).run_to_site(golden.fault_sites + 1)

    def test_timing_cannot_resume(self, program):
        from repro.machine.timing import TimingConfig

        machine = Machine(program)
        snap = machine.run_to_site(10)
        with pytest.raises(MachineFault):
            machine.run(resume_from=snap, timing=TimingConfig())
