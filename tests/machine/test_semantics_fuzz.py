"""Differential fuzzing of machine semantics against big-int references.

Each test drives randomly drawn operands through the real decode/execute
pipeline (tiny assembly programs on :class:`Machine`) and checks the
architectural result against an independent Python reference computed with
unbounded integers. This is the harness that would have caught the
``int(dividend / divisor)`` idiv bug: float-based shortcuts agree with the
reference on small operands and drift beyond 2^53, so the 64-bit draws
here exercise exactly the range where shortcuts break.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.parser import parse_program
from repro.machine.cpu import Machine
from repro.utils.bitops import to_signed, to_unsigned, trunc_div

I64 = st.integers(-(1 << 63), (1 << 63) - 1)
NONZERO_I64 = I64.filter(lambda v: v != 0)
I32 = st.integers(-(1 << 31), (1 << 31) - 1)

_FUZZ = settings(max_examples=40, deadline=None)


def _run(body: str) -> int:
    """Run a snippet and return %rax as a signed 64-bit integer."""
    text = "\t.globl main\nmain:\n"
    for line in body.strip().splitlines():
        text += f"\t{line.strip()}\n"
    text += "\tmovq %rax, %rdi\n\tcall print_long\n\tmovl $0, %eax\n\tretq\n"
    return int(Machine(parse_program(text)).run().output[0])


class TestAluDifferential:
    @_FUZZ
    @given(I64, I64, st.sampled_from(["addq", "subq", "imulq", "andq",
                                      "orq", "xorq"]))
    def test_binary_64(self, a, b, op):
        got = _run(f"movq ${a}, %rax\n movq ${b}, %rcx\n {op} %rcx, %rax")
        reference = {
            "addq": a + b, "subq": a - b, "imulq": a * b,
            "andq": a & b, "orq": a | b, "xorq": a ^ b,
        }[op]
        assert got == to_signed(to_unsigned(reference, 64), 64)

    @_FUZZ
    @given(I32, I32, st.sampled_from(["addl", "subl", "imull", "andl",
                                      "orl", "xorl"]))
    def test_binary_32_zero_extends(self, a, b, op):
        # 32-bit ops wrap at 32 bits and zero-extend into the full register.
        got = _run(f"movl ${a}, %eax\n movl ${b}, %ecx\n {op} %ecx, %eax")
        reference = {
            "addl": a + b, "subl": a - b, "imull": a * b,
            "andl": a & b, "orl": a | b, "xorl": a ^ b,
        }[op]
        assert got == to_unsigned(reference, 32)

    @_FUZZ
    @given(I64)
    def test_unary_64(self, a):
        assert _run(f"movq ${a}, %rax\n negq %rax") \
            == to_signed(to_unsigned(-a, 64), 64)
        assert _run(f"movq ${a}, %rax\n notq %rax") == ~a


class TestShiftDifferential:
    @_FUZZ
    @given(I64, st.integers(0, 63))
    def test_shl(self, a, count):
        got = _run(f"movq ${a}, %rax\n movb ${count}, %cl\n shlq %cl, %rax")
        assert got == to_signed(to_unsigned(a << count, 64), 64)

    @_FUZZ
    @given(I64, st.integers(0, 63))
    def test_shr_is_logical(self, a, count):
        got = _run(f"movq ${a}, %rax\n movb ${count}, %cl\n shrq %cl, %rax")
        assert got == to_signed(to_unsigned(a, 64) >> count, 64)

    @_FUZZ
    @given(I64, st.integers(0, 63))
    def test_sar_is_arithmetic(self, a, count):
        got = _run(f"movq ${a}, %rax\n movb ${count}, %cl\n sarq %cl, %rax")
        assert got == a >> count  # Python's >> floors, == sar for any sign


class TestDivisionDifferential:
    @_FUZZ
    @given(I64, NONZERO_I64)
    def test_idivq_quotient_and_remainder(self, dividend, divisor):
        # cqto sign-extends rax into rdx, so the 128-bit dividend equals
        # the 64-bit value and the quotient always fits: no #DE possible.
        quotient = _run(f"""
            movq ${dividend}, %rax
            movq ${divisor}, %rcx
            cqto
            idivq %rcx
        """)
        remainder = _run(f"""
            movq ${dividend}, %rax
            movq ${divisor}, %rcx
            cqto
            idivq %rcx
            movq %rdx, %rax
        """)
        assert quotient == trunc_div(dividend, divisor)
        assert remainder == dividend - trunc_div(dividend, divisor) * divisor

    @_FUZZ
    @given(I32, st.integers(1, (1 << 31) - 1))
    def test_idivl_widened(self, dividend, divisor):
        got = _run(f"""
            movl ${dividend}, %eax
            movl ${divisor}, %ecx
            cltd
            idivl %ecx
            movslq %eax, %rax
        """)
        assert got == trunc_div(dividend, divisor)


class TestCompareDifferential:
    @_FUZZ
    @given(I64, I64, st.sampled_from([("setl", lambda a, b: a < b),
                                      ("setg", lambda a, b: a > b),
                                      ("sete", lambda a, b: a == b),
                                      ("setle", lambda a, b: a <= b),
                                      ("setge", lambda a, b: a >= b),
                                      ("setne", lambda a, b: a != b)]))
    def test_cmp_setcc(self, a, b, case):
        mnemonic, reference = case
        # AT&T cmpq %rcx, %rax compares rax against rcx (a ? b).
        got = _run(f"""
            movq ${a}, %rax
            movq ${b}, %rcx
            cmpq %rcx, %rax
            {mnemonic} %al
            movzbl %al, %eax
        """)
        assert got == int(reference(a, b))

    @_FUZZ
    @given(I64, I64)
    def test_test_sets_zero_flag(self, a, b):
        got = _run(f"""
            movq ${a}, %rax
            movq ${b}, %rcx
            testq %rcx, %rax
            sete %al
            movzbl %al, %eax
        """)
        assert got == int((to_unsigned(a, 64) & to_unsigned(b, 64)) == 0)
