"""Signature (hybrid IR half) pass tests."""

from repro.backend import compile_module
from repro.eddi.signatures import protect_branches_with_signatures
from repro.ir.instructions import Alloca, Check
from repro.ir.interp import IRInterpreter
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir

BRANCHY = """
int main() {
    int total = 0;
    for (int i = 0; i < 6; i++) {
        if (i % 2 == 0) { total += i; } else { total -= 1; }
    }
    print_int(total);
    return 0;
}
"""


class TestSignaturePass:
    def test_stats(self):
        module = compile_to_ir(BRANCHY)
        stats = protect_branches_with_signatures(module)
        assert stats.branches_protected >= 2   # loop + if
        assert stats.comparisons_duplicated >= 2
        assert stats.entry_checks >= 3
        assert stats.blocks_signed == sum(
            len(f.blocks) for f in module.functions
        )

    def test_gsr_slot_created_first(self):
        module = compile_to_ir(BRANCHY)
        protect_branches_with_signatures(module)
        entry = module.function("main").entry
        assert isinstance(entry.instructions[0], Alloca)
        assert entry.instructions[0].name == "__sig"

    def test_entry_checks_at_targets(self):
        module = compile_to_ir(BRANCHY)
        protect_branches_with_signatures(module)
        func = module.function("main")
        targets = set()
        for block in func.blocks:
            targets.update(func.successors(block))
        for block in func.blocks:
            if block.label in targets and block is not func.entry:
                kinds = [type(i) for i in block.instructions[:2]]
                assert Check in kinds

    def test_output_preserved_in_interpreter(self):
        plain = compile_to_ir(BRANCHY)
        protected = compile_to_ir(BRANCHY)
        protect_branches_with_signatures(protected)
        assert IRInterpreter(plain).run().output == \
            IRInterpreter(protected).run().output

    def test_output_preserved_when_compiled(self):
        plain = compile_to_ir(BRANCHY)
        protected = compile_to_ir(BRANCHY)
        protect_branches_with_signatures(protected)
        assert Machine(compile_module(plain)).run().output == \
            Machine(compile_module(protected)).run().output

    def test_instrumentation_tagged_by_backend(self):
        module = compile_to_ir(BRANCHY)
        protect_branches_with_signatures(module)
        program = compile_module(module)
        origins = {i.origin for i in program.instructions()}
        assert "instrumentation" in origins
        assert "check" in origins
