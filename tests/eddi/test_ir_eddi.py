"""IR-LEVEL-EDDI pass tests."""

import pytest

from repro.eddi.ir_eddi import protect_module
from repro.errors import DetectionExit
from repro.ir.instructions import BinOp, Br, Call, Check, ICmp, Load, Ret, Store
from repro.ir.interp import IRInterpreter
from repro.ir.verifier import verify_module
from repro.minic import compile_to_ir

SOURCE = """
int main() {
    int* p = malloc(8);
    p[0] = 3;
    int x = p[0] + 4;
    if (x > 5) { print_int(x); }
    return x;
}
"""


class TestTransformShape:
    def test_stats_counts(self):
        module = compile_to_ir(SOURCE)
        before = module.static_size()
        stats = protect_module(module)
        assert stats.duplicated > 0
        assert stats.checks > 0
        assert module.static_size() == before + stats.duplicated + stats.checks

    def test_duplicates_follow_originals(self):
        module = compile_to_ir("int main() { return 2 + 3; }")
        protect_module(module)
        instrs = list(module.function("main").instructions())
        for i, instr in enumerate(instrs):
            if isinstance(instr, BinOp) and not instr.name.endswith(".dup"):
                assert isinstance(instrs[i + 1], BinOp)
                assert instrs[i + 1].name.endswith(".dup")

    def test_checks_precede_sync_points(self):
        module = compile_to_ir(SOURCE)
        protect_module(module)
        for func in module.functions:
            for block in func.blocks:
                instrs = block.instructions
                for i, instr in enumerate(instrs):
                    if isinstance(instr, Check):
                        rest = instrs[i + 1:]
                        sync = next(
                            (x for x in rest
                             if isinstance(x, (Store, Br, Call, Ret))), None)
                        assert sync is not None

    def test_duplicate_chain_uses_shadow_operands(self):
        module = compile_to_ir("int main() { int x = 1 + 2; return x * x; }")
        protect_module(module)
        mains = list(module.function("main").instructions())
        dups = [i for i in mains if i.name.endswith(".dup")]
        # At least one dup must consume another dup (chained shadows).
        assert any(
            any(getattr(op, "name", "").endswith(".dup")
                for op in dup.operands())
            for dup in dups
        )

    def test_transformed_module_verifies(self):
        module = compile_to_ir(SOURCE)
        protect_module(module)
        verify_module(module)

    def test_output_preserved(self):
        plain = compile_to_ir(SOURCE)
        protected = compile_to_ir(SOURCE)
        protect_module(protected)
        assert IRInterpreter(plain).run().output == \
            IRInterpreter(protected).run().output

    def test_allocas_not_duplicated(self):
        module = compile_to_ir(SOURCE)
        stats = protect_module(module)
        allocas = [i for i in module.function("main").instructions()
                   if i.opcode == "alloca"]
        assert not any(a.name.endswith(".dup") for a in allocas)


class TestDetectionSemantics:
    def test_fault_in_protected_value_detected(self):
        module = compile_to_ir("int main() { print_int(10 + 20); return 0; }")
        protect_module(module)

        def hook(ip, instr, site):
            if isinstance(instr, BinOp) and not instr.name.endswith(".dup"):
                ip.flip_value(instr, 4)

        with pytest.raises(DetectionExit):
            IRInterpreter(module).run(fault_hook=hook)

    def test_fault_in_duplicate_also_detected(self):
        module = compile_to_ir("int main() { print_int(10 + 20); return 0; }")
        protect_module(module)

        def hook(ip, instr, site):
            if isinstance(instr, BinOp) and instr.name.endswith(".dup"):
                ip.flip_value(instr, 4)

        with pytest.raises(DetectionExit):
            IRInterpreter(module).run(fault_hook=hook)

    def test_branch_condition_protected_at_ir(self):
        module = compile_to_ir("""
            int main() {
                int x = 7;
                if (x > 3) { print_int(1); } else { print_int(0); }
                return 0;
            }
        """)
        protect_module(module)

        def hook(ip, instr, site):
            if isinstance(instr, ICmp) and not instr.name.endswith(".dup"):
                ip.flip_value(instr, 0)

        with pytest.raises(DetectionExit):
            IRInterpreter(module).run(fault_hook=hook)
