"""Shared fixtures: small programs compiled once per session."""

from __future__ import annotations

import pytest

from repro.pipeline import BuildResult, build_variants

#: A small but feature-rich program: loops, branches, calls, arrays,
#: division, long arithmetic, short-circuit logic.
SMALL_SOURCE = """
int helper(int a, int b) {
    if (a > b && a % 3 != 0) { return a - b; }
    return b - a;
}

int main() {
    int* data = malloc(32);
    srand(5);
    for (int i = 0; i < 8; i++) { data[i] = rand_next() % 50 - 25; }
    long total = 0;
    int i = 0;
    while (i < 8) {
        total += helper(data[i], i * 2);
        i++;
    }
    if (total < 0) { total = -total; }
    print_long(total);
    print_int(helper(9, 4));
    return 0;
}
"""

#: Minimal straight-line program for cheap per-test builds.
TINY_SOURCE = """
int main() {
    int a = 6;
    int b = 7;
    int c = a * b + 3;
    print_int(c);
    return 0;
}
"""


@pytest.fixture(scope="session")
def small_build() -> BuildResult:
    """All four variants of SMALL_SOURCE (built once)."""
    return build_variants(SMALL_SOURCE)


@pytest.fixture(scope="session")
def tiny_build() -> BuildResult:
    """All four variants of TINY_SOURCE (built once)."""
    return build_variants(TINY_SOURCE)
