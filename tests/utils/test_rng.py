"""Unit tests for repro.utils.rng."""

from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [
            b.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_seed_property(self):
        assert DeterministicRng(7).seed == 7


class TestFork:
    def test_fork_is_deterministic(self):
        a = DeterministicRng(9).fork(3)
        b = DeterministicRng(9).fork(3)
        assert a.randint(0, 10 ** 9) == b.randint(0, 10 ** 9)

    def test_fork_streams_are_independent(self):
        parent = DeterministicRng(9)
        streams = [parent.fork(i).randint(0, 10 ** 9) for i in range(50)]
        assert len(set(streams)) > 45  # collisions would indicate bad mixing

    def test_fork_does_not_consume_parent_state(self):
        parent = DeterministicRng(9)
        before = DeterministicRng(9).randint(0, 10 ** 9)
        parent.fork(0)
        assert parent.randint(0, 10 ** 9) == before


class TestHelpers:
    def test_sample_bit_in_range(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            assert 0 <= rng.sample_bit(64) < 64

    def test_choice_returns_member(self):
        rng = DeterministicRng(1)
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(items) in items

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(1)
        items = list(range(30))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(30))  # input untouched

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(5)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0
