"""Unit tests for repro.utils.text."""

from repro.utils.text import format_table, percent


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["x", 1], ["yyy", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("a ")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        table = format_table(["a"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table

    def test_cells_stringified(self):
        table = format_table(["n"], [[3.5]])
        assert "3.5" in table


class TestPercent:
    def test_basic(self):
        assert percent(0.2983) == "29.8%"

    def test_digits(self):
        assert percent(0.5, digits=0) == "50%"

    def test_over_one(self):
        assert percent(1.345) == "134.5%"
