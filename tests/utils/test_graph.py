"""Dominators and natural-loop detection (the section-boundary substrate)."""

from repro.utils.graph import (
    dominators,
    innermost_headers,
    natural_loops,
    reachable,
)


def diamond():
    # entry -> a, b; a -> exit; b -> exit
    return ["e", "a", "b", "x"], {"e": ["a", "b"], "a": ["x"], "b": ["x"],
                                  "x": []}


def nested_loops():
    # e -> a; a -> {b, x}; b -> c; c -> {b, a}: outer loop headed at a,
    # inner loop headed at b.
    return ["e", "a", "b", "c", "x"], {
        "e": ["a"], "a": ["b", "x"], "b": ["c"], "c": ["b", "a"], "x": [],
    }


class TestDominators:
    def test_diamond(self):
        nodes, succs = diamond()
        dom = dominators("e", nodes, succs)
        assert dom["x"] == {"e", "x"}
        assert dom["a"] == {"e", "a"}
        assert dom["e"] == {"e"}

    def test_unreachable_nodes_excluded(self):
        nodes = ["e", "a", "dead"]
        succs = {"e": ["a"], "a": [], "dead": ["a"]}
        dom = dominators("e", nodes, succs)
        assert "dead" not in dom
        assert dom["a"] == {"e", "a"}
        assert reachable("e", succs) == {"e", "a"}


class TestNaturalLoops:
    def test_acyclic_has_no_loops(self):
        nodes, succs = diamond()
        assert natural_loops("e", nodes, succs) == []

    def test_self_loop(self):
        nodes = ["e", "a", "x"]
        succs = {"e": ["a"], "a": ["a", "x"], "x": []}
        (loop,) = natural_loops("e", nodes, succs)
        assert loop.header == "a"
        assert loop.body == {"a"}
        assert loop.depth == 1

    def test_nested_loops_and_depths(self):
        nodes, succs = nested_loops()
        loops = {loop.header: loop for loop in
                 natural_loops("e", nodes, succs)}
        assert loops["a"].body == {"a", "b", "c"}
        assert loops["a"].depth == 1
        assert loops["b"].body == {"b", "c"}
        assert loops["b"].depth == 2

    def test_innermost_headers(self):
        nodes, succs = nested_loops()
        headers = innermost_headers("e", nodes, succs)
        assert headers == {"e": None, "a": "a", "b": "b", "c": "b",
                           "x": None}

    def test_same_header_back_edges_merge(self):
        # Two back edges into h: bodies union into one loop.
        nodes = ["e", "h", "a", "b", "x"]
        succs = {"e": ["h"], "h": ["a", "x"], "a": ["h", "b"], "b": ["h"],
                 "x": []}
        (loop,) = natural_loops("e", nodes, succs)
        assert loop.header == "h"
        assert loop.body == {"h", "a", "b"}
