"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    flip_bit,
    mask_for_width,
    parity_even,
    popcount,
    sign_extend,
    to_signed,
    to_unsigned,
    zero_extend,
)

WIDTHS = (8, 16, 32, 64)


class TestMaskForWidth:
    def test_common_widths(self):
        assert mask_for_width(8) == 0xFF
        assert mask_for_width(32) == 0xFFFF_FFFF
        assert mask_for_width(64) == (1 << 64) - 1

    def test_uncached_width(self):
        assert mask_for_width(5) == 0b11111

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mask_for_width(0)


class TestSignedness:
    def test_to_unsigned_wraps_negative(self):
        assert to_unsigned(-1, 8) == 255
        assert to_unsigned(-128, 8) == 128

    def test_to_signed_high_bit(self):
        assert to_signed(0x80, 8) == -128
        assert to_signed(0xFFFF_FFFF, 32) == -1

    def test_to_signed_positive_passthrough(self):
        assert to_signed(127, 8) == 127

    @given(st.integers(-(2 ** 63), 2 ** 63 - 1),
           st.sampled_from(WIDTHS))
    def test_roundtrip(self, value, width):
        truncated = to_unsigned(value, width)
        assert to_unsigned(to_signed(truncated, width), width) == truncated

    @given(st.integers(0, 2 ** 64 - 1), st.sampled_from(WIDTHS))
    def test_signed_range(self, value, width):
        signed = to_signed(value, width)
        assert -(1 << (width - 1)) <= signed < (1 << (width - 1))


class TestSignExtend:
    def test_extends_negative(self):
        assert sign_extend(0xFF, 8, 16) == 0xFFFF
        assert sign_extend(0x8000_0000, 32, 64) == 0xFFFF_FFFF_8000_0000

    def test_extends_positive_unchanged(self):
        assert sign_extend(0x7F, 8, 64) == 0x7F

    def test_same_width_identity(self):
        assert sign_extend(0xAB, 8, 8) == 0xAB

    def test_rejects_narrowing(self):
        with pytest.raises(ValueError):
            sign_extend(0, 16, 8)

    def test_zero_extend_truncates(self):
        assert zero_extend(0x1FF, 8) == 0xFF


class TestFlipBit:
    def test_sets_clear_bit(self):
        assert flip_bit(0, 3, 8) == 8

    def test_clears_set_bit(self):
        assert flip_bit(8, 3, 8) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            flip_bit(0, 8, 8)
        with pytest.raises(ValueError):
            flip_bit(0, -1, 8)

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 31))
    def test_involution(self, value, bit):
        assert flip_bit(flip_bit(value, bit, 32), bit, 32) == value

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 31))
    def test_changes_exactly_one_bit(self, value, bit):
        flipped = flip_bit(value, bit, 32)
        assert popcount(value ^ flipped) == 1


class TestParity:
    def test_even_parity_of_zero(self):
        assert parity_even(0)

    def test_single_bit_is_odd(self):
        assert not parity_even(1)

    def test_only_low_byte_counts(self):
        assert parity_even(0x100)  # bit above the low byte is ignored

    @given(st.integers(0, 255))
    def test_matches_popcount(self, value):
        assert parity_even(value) == (popcount(value) % 2 == 0)
