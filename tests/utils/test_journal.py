"""Durability primitive tests: journal appends, torn tails, file locks.

These pin the exact recovery semantics the campaign service builds on: a
kill can tear at most the final line of an append-only file (which open
repairs), corruption anywhere else is loud, atomic replacement never
exposes partial files, and locks die with their holder.
"""

import json
import os

import pytest

from repro.errors import JournalError
from repro.utils.journal import (
    Journal,
    append_jsonl,
    durable_replace,
    scan_jsonl,
)
from repro.utils.locking import FileLock, LockHeldError


def _write_lines(path, *lines: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(b"".join(lines))


class TestScanJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for n in range(5):
                append_jsonl(handle, {"n": n}, fsync=False)
        records, clean, torn = scan_jsonl(path)
        assert records == [{"n": n} for n in range(5)]
        assert clean == path.stat().st_size
        assert not torn

    def test_unterminated_tail_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_lines(path, b'{"n": 0}\n', b'{"n": 1}\n', b'{"n": 2')
        records, clean, torn = scan_jsonl(path)
        assert records == [{"n": 0}, {"n": 1}]
        assert clean == len(b'{"n": 0}\n{"n": 1}\n')
        assert torn

    def test_garbage_final_line_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_lines(path, b'{"n": 0}\n', b"\x00\xffgarbage\n")
        records, clean, torn = scan_jsonl(path)
        assert records == [{"n": 0}]
        assert torn

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_lines(path, b'{"n": 0}\n', b"not json\n", b'{"n": 2}\n')
        with pytest.raises(JournalError, match="not the final line"):
            scan_jsonl(path)


class TestJournal:
    def test_append_and_recover(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path, fsync=False) as journal:
            assert journal.recovered == []
            journal.append({"type": "a"})
            journal.append({"type": "b"})
        with Journal(path, fsync=False) as journal:
            assert [r["type"] for r in journal.recovered] == ["a", "b"]

    def test_torn_tail_is_truncated_before_appending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append({"n": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"n": 1')  # kill -9 mid-append
        with Journal(path, fsync=False) as journal:
            assert journal.recovered == [{"n": 0}]
            journal.append({"n": 2})
        records, _, torn = scan_jsonl(path)
        assert records == [{"n": 0}, {"n": 2}]
        assert not torn

    def test_append_after_close_raises(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl", fsync=False)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append({})

    def test_fsync_mode_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, fsync=True) as journal:
            journal.append({"durable": True})
        assert Journal(path).recovered == [{"durable": True}]


class TestDurableReplace:
    def test_publishes_complete_file(self, tmp_path):
        final = tmp_path / "out.json"
        tmp = tmp_path / "out.json.tmp"
        tmp.write_text('{"ok": true}')
        durable_replace(tmp, final)
        assert json.loads(final.read_text()) == {"ok": True}
        assert not tmp.exists()

    def test_replaces_existing_atomically(self, tmp_path):
        final = tmp_path / "out.json"
        final.write_text("old")
        tmp = tmp_path / "t"
        tmp.write_text("new")
        durable_replace(tmp, final)
        assert final.read_text() == "new"


class TestFileLock:
    def test_exclusive_within_process(self, tmp_path):
        path = tmp_path / "lock"
        with FileLock(path) as lock:
            assert lock.held
            with pytest.raises(LockHeldError):
                FileLock(path).acquire()
        # released: can be taken again
        with FileLock(path):
            pass

    def test_close_inherited_does_not_release(self, tmp_path):
        path = tmp_path / "lock"
        lock = FileLock(path).acquire()
        # A forked child dropping its inherited copy must not unlock the
        # parent; close_inherited on a second handle of the same lock
        # object simulates the child side.
        child_view = FileLock(path)
        child_view._fd = os.dup(lock._fd)
        child_view.close_inherited()
        assert not child_view.held
        with pytest.raises(LockHeldError):
            FileLock(path).acquire()
        lock.release()

    def test_survives_holder_death(self, tmp_path):
        # flock dies with its holder: a forked process that takes the lock
        # and exits without releasing leaves it acquirable.
        if not hasattr(os, "fork"):
            pytest.skip("fork unavailable")
        path = tmp_path / "lock"
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: acquire, signal, die without releasing
            try:
                FileLock(path).acquire()
                os.write(write_fd, b"1")
            finally:
                os._exit(0)
        os.read(read_fd, 1)
        os.waitpid(pid, 0)
        os.close(read_fd)
        os.close(write_fd)
        with FileLock(path):
            pass
