"""Instruction-selection tests: code shape and differential execution.

The *shape* tests pin the -O0 idioms the paper's cross-layer analysis
depends on (slot reloads, flag rematerialization, argument marshalling);
the *differential* tests check compiled behaviour against the IR
interpreter, including a hypothesis-driven sweep over generated programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import compile_module
from repro.ir.interp import IRInterpreter
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir


def compiled_texts(source: str) -> str:
    from repro.asm.printer import format_program

    return format_program(compile_module(compile_to_ir(source)))


def run_both(source: str):
    module = compile_to_ir(source)
    ir_result = IRInterpreter(module).run()
    asm_result = Machine(compile_module(module)).run()
    return ir_result, asm_result


def assert_equivalent(source: str):
    ir_result, asm_result = run_both(source)
    assert asm_result.output == ir_result.output
    assert asm_result.exit_code == ir_result.exit_code


class TestCodeShape:
    def test_prologue_epilogue(self):
        text = compiled_texts("int main() { return 3; }")
        assert "pushq %rbp" in text
        assert "movq %rsp, %rbp" in text
        assert "popq %rbp" in text
        assert "retq" in text

    def test_values_spill_to_slots(self):
        text = compiled_texts("int main() { int x = 1 + 2; return x; }")
        assert "(%rbp)" in text  # slot traffic everywhere

    def test_branch_folds_adjacent_compare(self):
        text = compiled_texts("""
            int main() { int x = 3; if (x < 5) { return 1; } return 0; }
        """)
        assert "jge" in text  # inverted condition drives the branch

    def test_short_circuit_rematerializes_condition(self):
        """The Fig. 8/9 pattern: a reloaded condition needs a fresh cmpl."""
        text = compiled_texts("""
            int f(int x) { return x; }
            int main() {
                if (f(1) && f(2)) { return 1; }
                return 0;
            }
        """)
        assert "cmpl $0," in text

    def test_argument_marshalling(self):
        text = compiled_texts("""
            int add(int a, int b) { return a + b; }
            int main() { return add(1, 2); }
        """)
        assert "%edi" in text and "%esi" in text

    def test_division_uses_idiv(self):
        text = compiled_texts("int main() { int d = 3; return 7 / d; }")
        assert "cltd" in text and "idivl" in text

    def test_sext_uses_movslq(self):
        text = compiled_texts("""
            int main() { int* p = malloc(8); int i = 1; p[i] = 5; return p[i]; }
        """)
        assert "movslq" in text  # index sign-extension (paper Fig. 4 shape)

    def test_icmp_materializes_with_setcc(self):
        text = compiled_texts("""
            int main() { int x = 3; int b = x < 5; return b; }
        """)
        assert "setl" in text and "movzbl" in text

    def test_no_spare_registers_touched(self):
        """The backend must leave r10-r15 free — FERRUM's spare set."""
        text = compiled_texts("""
            int f(int a, int b) { return a * b + a / b; }
            int main() { return f(9, 2); }
        """)
        for spare in ("r10", "r11", "r12", "r13", "r14", "r15"):
            assert spare not in text


class TestDifferentialFixed:
    def test_arith(self):
        assert_equivalent("int main() { print_int((8 * 7 - 6) / 5 % 4); return 0; }")

    def test_loops_and_arrays(self):
        assert_equivalent("""
            int main() {
                int* v = malloc(40);
                for (int i = 0; i < 10; i++) { v[i] = i * 3 - 7; }
                int best = v[0];
                for (int i = 1; i < 10; i++) {
                    if (v[i] > best) { best = v[i]; }
                }
                print_int(best);
                return 0;
            }
        """)

    def test_calls_and_recursion(self):
        assert_equivalent("""
            int gcd(int a, int b) {
                if (b == 0) { return a; }
                return gcd(b, a % b);
            }
            int main() { print_int(gcd(462, 1071)); return 0; }
        """)

    def test_longs(self):
        assert_equivalent("""
            int main() {
                long acc = 1;
                for (int i = 1; i < 16; i++) { acc = acc * i; }
                print_long(acc);
                print_long(acc >> 7);
                return 0;
            }
        """)

    def test_short_circuit(self):
        assert_equivalent("""
            int noisy(int v) { print_int(v); return v; }
            int main() {
                if (noisy(1) && noisy(0) && noisy(2)) { print_int(99); }
                if (noisy(0) || noisy(3)) { print_int(88); }
                return 0;
            }
        """)

    def test_negative_division(self):
        assert_equivalent("""
            int main() {
                for (int a = -9; a < 10; a += 3) {
                    print_int(a / 4);
                    print_int(a % 4);
                }
                return 0;
            }
        """)

    def test_rand_runtime(self):
        assert_equivalent("""
            int main() {
                srand(11);
                long total = 0;
                for (int i = 0; i < 20; i++) { total += rand_next() % 97; }
                print_long(total);
                return 0;
            }
        """)


# -- hypothesis: generated straight-line expression programs ----------------

_SMALL = st.integers(-50, 50)
_NONZERO = st.integers(1, 50)


@st.composite
def _expr_program(draw):
    """A program computing a chain of operations over three variables."""
    a, b, c = draw(_SMALL), draw(_SMALL), draw(_NONZERO)
    lines = [f"int a = {a};", f"int b = {b};", f"int c = {c};"]
    ops = draw(st.lists(
        st.sampled_from(["a = a + b;", "b = b - a;", "a = a * 3;",
                         "b = a / c;", "a = b % c;", "a = a << 2;",
                         "b = b >> 1;", "a = a & b;", "b = a | b;",
                         "a = a ^ c;",
                         "if (a < b) { a = a + 1; } else { b = b + 1; }",
                         "while (a > 100) { a = a - 50; }"]),
        min_size=1, max_size=12,
    ))
    lines.extend(ops)
    lines.append("print_int(a); print_int(b);")
    body = "\n    ".join(lines)
    return f"int main() {{\n    {body}\n    return 0;\n}}"


class TestDifferentialGenerated:
    @settings(max_examples=40, deadline=None)
    @given(_expr_program())
    def test_generated_programs_agree(self, source):
        assert_equivalent(source)
