"""Frame layout tests."""

import pytest

from repro.backend.frame import FrameLayout
from repro.errors import BackendError
from repro.ir.builder import IRBuilder
from repro.ir.module import IRFunction
from repro.ir.types import I32, I64
from repro.ir.values import Constant


def _layout(body):
    """Build f(a: i32) with ``body(builder, func)``; return (layout, result)."""
    func = IRFunction("f", [("a", I32)], I32)
    builder = IRBuilder(func)
    builder.position_at(func.add_block("entry"))
    values = body(builder, func)
    builder.ret(Constant(0, I32))
    return FrameLayout(func), values


class TestSlots:
    def test_argument_slot_offset(self):
        func = IRFunction("g", [("x", I64)], I64)
        builder = IRBuilder(func)
        builder.position_at(func.add_block("entry"))
        builder.ret(Constant(0, I64))
        assert FrameLayout(func).slot(func.args[0]) == -8

    def test_value_slots_distinct(self):
        def body(b, f):
            x = b.binop("add", f.args[0], Constant(1, I32))
            y = b.binop("add", x, Constant(2, I32))
            return (x, y)

        layout, (x, y) = _layout(body)
        offsets = {layout.slot(x), layout.slot(y)}
        assert len(offsets) == 2
        assert all(off < 0 for off in offsets)

    def test_alloca_storage_sized_by_count(self):
        def body(b, f):
            arr = b.alloca(I32, count=10)
            one = b.alloca(I32)
            return (arr, one)

        layout, (arr, one) = _layout(body)
        arr_start = layout.storage(arr)
        one_start = layout.storage(one)
        # Regions [start, start+size) must not overlap.
        arr_range = range(arr_start, arr_start + 40)
        one_range = range(one_start, one_start + 4)
        assert not set(arr_range) & set(one_range)

    def test_frame_size_is_16_aligned(self):
        layout, _ = _layout(lambda b, f: b.alloca(I32))
        assert layout.size % 16 == 0 and layout.size > 0

    def test_missing_slot_raises(self):
        layout, _ = _layout(lambda b, f: None)
        with pytest.raises(BackendError):
            layout.slot(Constant(1, I32))

    def test_alloca_has_storage_but_no_value_slot(self):
        layout, alloca = _layout(lambda b, f: b.alloca(I32))
        assert layout.storage(alloca) < 0
        with pytest.raises(BackendError):
            layout.slot(alloca)

    def test_has_slot(self):
        def body(b, f):
            return b.binop("add", f.args[0], Constant(1, I32))

        layout, value = _layout(body)
        assert layout.has_slot(value)
        assert not layout.has_slot(Constant(3, I32))
