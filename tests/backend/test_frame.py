"""Frame layout tests."""

import pytest

from repro.asm.parser import parse_program
from repro.asm.printer import format_program
from repro.backend.frame import FrameLayout
from repro.errors import BackendError
from repro.ir.builder import IRBuilder
from repro.ir.module import IRFunction
from repro.ir.types import I32, I64
from repro.ir.values import Constant


def _layout(body):
    """Build f(a: i32) with ``body(builder, func)``; return (layout, result)."""
    func = IRFunction("f", [("a", I32)], I32)
    builder = IRBuilder(func)
    builder.position_at(func.add_block("entry"))
    values = body(builder, func)
    builder.ret(Constant(0, I32))
    return FrameLayout(func), values


class TestSlots:
    def test_argument_slot_offset(self):
        func = IRFunction("g", [("x", I64)], I64)
        builder = IRBuilder(func)
        builder.position_at(func.add_block("entry"))
        builder.ret(Constant(0, I64))
        assert FrameLayout(func).slot(func.args[0]) == -8

    def test_value_slots_distinct(self):
        def body(b, f):
            x = b.binop("add", f.args[0], Constant(1, I32))
            y = b.binop("add", x, Constant(2, I32))
            return (x, y)

        layout, (x, y) = _layout(body)
        offsets = {layout.slot(x), layout.slot(y)}
        assert len(offsets) == 2
        assert all(off < 0 for off in offsets)

    def test_alloca_storage_sized_by_count(self):
        def body(b, f):
            arr = b.alloca(I32, count=10)
            one = b.alloca(I32)
            return (arr, one)

        layout, (arr, one) = _layout(body)
        arr_start = layout.storage(arr)
        one_start = layout.storage(one)
        # Regions [start, start+size) must not overlap.
        arr_range = range(arr_start, arr_start + 40)
        one_range = range(one_start, one_start + 4)
        assert not set(arr_range) & set(one_range)

    def test_frame_size_is_16_aligned(self):
        layout, _ = _layout(lambda b, f: b.alloca(I32))
        assert layout.size % 16 == 0 and layout.size > 0

    def test_missing_slot_raises(self):
        layout, _ = _layout(lambda b, f: None)
        with pytest.raises(BackendError):
            layout.slot(Constant(1, I32))

    def test_alloca_has_storage_but_no_value_slot(self):
        layout, alloca = _layout(lambda b, f: b.alloca(I32))
        assert layout.storage(alloca) < 0
        with pytest.raises(BackendError):
            layout.slot(alloca)

    def test_has_slot(self):
        def body(b, f):
            return b.binop("add", f.args[0], Constant(1, I32))

        layout, value = _layout(body)
        assert layout.has_slot(value)
        assert not layout.has_slot(Constant(3, I32))


def _two_value_func():
    func = IRFunction("f", [("a", I32)], I32)
    builder = IRBuilder(func)
    builder.position_at(func.add_block("entry"))
    x = builder.binop("add", func.args[0], Constant(1, I32))
    builder.binop("add", x, Constant(2, I32))
    builder.ret(Constant(0, I32))
    return func


class TestSlotPermutation:
    def test_seeded_shuffle_is_a_bijection_over_the_same_cells(self):
        func = _two_value_func()
        baseline = FrameLayout(func)
        shuffled = FrameLayout(func, slot_seed=99)
        cells = set(baseline.slot_map)
        assert set(shuffled.slot_map) == cells
        assert set(shuffled.slot_map.values()) == cells

    def test_seeded_shuffle_is_deterministic(self):
        func = _two_value_func()
        assert (FrameLayout(func, slot_seed=5).slot_map
                == FrameLayout(func, slot_seed=5).slot_map)

    def test_explicit_permutation_applies(self):
        func = _two_value_func()
        baseline = FrameLayout(func)
        cells = sorted(baseline.slot_map)
        rotated = dict(zip(cells, cells[1:] + cells[:1]))
        layout = FrameLayout(func, slot_permutation=rotated)
        assert layout.slot_map == rotated
        assert layout.slot(func.args[0]) \
            == rotated[baseline.slot(func.args[0])]

    def test_non_bijective_permutation_rejected(self):
        func = _two_value_func()
        cells = sorted(FrameLayout(func).slot_map)
        squash = {off: cells[0] for off in cells}  # many-to-one
        with pytest.raises(BackendError, match="not a bijection"):
            FrameLayout(func, slot_permutation=squash)

    def test_wrong_domain_rejected(self):
        func = _two_value_func()
        with pytest.raises(BackendError, match="does not match"):
            FrameLayout(func, slot_permutation={-8: -8})

    def test_alloca_storage_never_permuted(self):
        func = IRFunction("g", [("a", I32)], I32)
        builder = IRBuilder(func)
        builder.position_at(func.add_block("entry"))
        arr = builder.alloca(I32, count=4)
        builder.binop("add", func.args[0], Constant(1, I32))
        builder.ret(Constant(0, I32))
        baseline = FrameLayout(func)
        for seed in (1, 2, 3):
            assert (FrameLayout(func, slot_seed=seed).storage(arr)
                    == baseline.storage(arr))

    def test_seed_and_permutation_are_exclusive(self):
        with pytest.raises(BackendError, match="not both"):
            FrameLayout(_two_value_func(), slot_seed=1,
                        slot_permutation={})


class TestShuffledLayoutRoundTrip:
    """A program lowered with a shuffled frame must survive the printer →
    parser round trip exactly — the permutation lives only in displacement
    values, which are ordinary printable operands."""

    def _compiled(self, slot_seed):
        from repro.backend.isel import LoweringKnobs, compile_module
        from repro.minic import compile_to_ir

        source = """
        int main() {
            int acc = 1;
            for (int i = 0; i < 5; i = i + 1) { acc = acc + i; }
            print_int(acc);
            return 0;
        }
        """
        return compile_module(compile_to_ir(source),
                              LoweringKnobs(slot_seed=slot_seed))

    @pytest.mark.parametrize("slot_seed", (None, 7))
    def test_round_trip_is_identity(self, slot_seed):
        program = self._compiled(slot_seed)
        text = format_program(program)
        assert format_program(parse_program(text)) == text

    def test_round_trip_preserves_behaviour(self):
        from repro.machine.cpu import Machine

        program = self._compiled(7)
        reparsed = parse_program(format_program(program))
        original = Machine(program).run()
        replayed = Machine(reparsed).run()
        assert replayed.output == original.output
        assert replayed.exit_code == original.exit_code
